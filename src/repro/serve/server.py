"""``repro-serve`` — the compilation-as-a-service daemon.

One long-lived process owns one hot :class:`~repro.driver.session.
CompilationSession` (in-memory LRU + sharded disk cache) and serves
concurrent ``compile`` / ``lint`` / ``validate-claims`` / ``stats``
requests over the length-prefixed JSON protocol of
:mod:`repro.serve.protocol`.  This is the paper's separate-compilation
bet turned into a serving architecture: the front end's persisted HLI
makes re-requests cheap, so many clients can share one set of artifacts
the way GCC's WHOPR splits compilation into a pipeline that shares one
set of summaries.

Request lifecycle::

    accept → admission control → coalescer → worker pool → respond
               (bounded queue,     (identical     (threads run the
                429 + retry_after   in-flight      CPU-bound pipeline
                when full)          keys share     against the shared
                                    one run)       session)

Concurrency model
-----------------
The event loop owns all protocol and bookkeeping state; pipeline work
runs in a thread pool so the loop stays responsive.  Worker threads
share the session — its cache tiers and counters are lock-guarded, and
the RTL id allocators and obs registry are thread-safe — so a warm hit
in any thread warms every future request.

Failure semantics
-----------------
* Admission overflow → ``status:"rejected"`` with ``retry_after``.
* Per-request deadline (``request_timeout``) → ``status:"error"``,
  ``code:"timeout"``; the slot is freed immediately.  A thread already
  executing cannot be interrupted, but its result still lands in the
  cache and completes the coalesced future for other waiters.
* Client disconnect mid-request → the request task is cancelled and its
  slot freed; coalesced work keeps running for the remaining waiters.
* Oversized frame → one error response, then the connection closes (the
  stream cannot be resynchronized without reading the refused bytes).
* Malformed JSON → error response; the connection stays usable (framing
  already consumed the bad payload).
* SIGTERM/SIGINT → graceful drain: stop accepting, let in-flight
  requests finish (bounded by ``drain_timeout``), then exit.
"""

from __future__ import annotations

import asyncio
import base64
import signal
import time
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Optional

from ..driver.compile import Compilation, CompileOptions
from ..driver.session import CompilationSession
from ..obs import metrics as _metrics
from ..obs import trace as _trace
from ..obs.metrics import Histogram
from .coalesce import Coalescer
from .limiter import AdmissionController, Rejected
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    FrameTooLarge,
    ProtocolError,
    encode_frame,
    options_from_wire,
    read_frame,
    request_key,
)

__all__ = ["ServeConfig", "CompileServer", "rtl_digest", "compile_summary"]

#: Ops that run the pipeline (admitted, coalesced, pooled).
PIPELINE_OPS = ("compile", "lint", "validate-claims", "compile-wp")
#: Ops answered inline on the event loop (cheap, never queued).
CONTROL_OPS = ("stats", "ping", "shutdown")


@dataclass
class ServeConfig:
    """Deployment knobs for one daemon (see docs/SERVING.md)."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: worker threads running pipeline work (CPU-bound; they share the
    #: session's cache, so more threads buy concurrency, not raw speed)
    workers: int = 4
    #: requests executing at once (admission control)
    max_inflight: int = 8
    #: admitted requests allowed to wait for an in-flight slot
    max_queue: int = 64
    #: per-request deadline in seconds (0 disables)
    request_timeout: float = 120.0
    #: graceful-drain budget after SIGTERM before in-flight work is abandoned
    drain_timeout: float = 30.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    cache_dir: Optional[str] = None
    max_memory_entries: int = 1024
    max_disk_bytes: Optional[int] = None
    #: record obs metrics (counters/gauges) in the daemon process.
    #: Spans stay off by default: a long-lived process must not
    #: accumulate an unbounded span tree.
    metrics: bool = True
    trace_spans: bool = False


@dataclass
class _ServerCounters:
    """Plain-int counters, event-loop-owned (valid even with obs off)."""

    requests: dict = field(default_factory=dict)  # per-op totals
    ok: int = 0
    errors: int = 0
    rejected: int = 0
    timeouts: int = 0
    disconnects: int = 0
    protocol_errors: int = 0
    #: pipeline executions actually started (the coalescer's leaders)
    pipeline_runs: int = 0


def program_digest(rtl) -> str:
    """Alpha-equivalent content digest of one RTL program."""
    from ..difftest.incremental import canonical_rtl

    h = sha256()
    for name, lines in sorted(canonical_rtl(rtl).items()):
        h.update(name.encode())
        h.update(b"\x00")
        for line in lines:
            h.update(line.encode())
            h.update(b"\n")
    return h.hexdigest()


def rtl_digest(comp: Compilation) -> str:
    """Content digest of the compiled code, stable across id renaming.

    Uses the differential harness's alpha-equivalent canonical rendering,
    so two pipeline runs of the same request digest identically even
    though their raw register ids differ — the load harness's
    correctness oracle.
    """
    return program_digest(comp.rtl)


def compile_summary(comp: Compilation) -> dict:
    """JSON-able result payload for one compilation."""
    stats = comp.total_dep_stats()
    return {
        "filename": comp.filename,
        "cache_state": comp.cache_state,
        "fn_cache_states": dict(comp.fn_cache_states),
        "functions": sorted(comp.rtl.functions) if comp.rtl is not None else [],
        "insns": (
            sum(len(f.insns) for f in comp.rtl.functions.values())
            if comp.rtl is not None
            else 0
        ),
        "rtl_sha256": rtl_digest(comp) if comp.rtl is not None else None,
        "dep_stats": {
            "total_tests": stats.total_tests,
            "gcc_yes": stats.gcc_yes,
            "hli_yes": stats.hli_yes,
            "combined_yes": stats.combined_yes,
        },
    }


class CompileServer:
    """The daemon: one session, one listener, many concurrent requests."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        session: Optional[CompilationSession] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.session = session or CompilationSession(
            cache_dir=self.config.cache_dir,
            max_memory_entries=self.config.max_memory_entries,
            max_disk_bytes=self.config.max_disk_bytes,
        )
        self.coalescer = Coalescer()
        self.limiter = AdmissionController(
            max_inflight=self.config.max_inflight, max_queue=self.config.max_queue
        )
        self.counters = _ServerCounters()
        self.latency: dict[str, Histogram] = {}
        self._pool = None  # ThreadPoolExecutor, created on start()
        self._server: Optional[asyncio.base_events.Server] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._draining = asyncio.Event()
        self._started = 0.0
        self.host = self.config.host
        self.port = self.config.port

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (``port=0`` picks a free port) and start serving."""
        from concurrent.futures import ThreadPoolExecutor

        if self.config.metrics:
            _metrics.enable()
        if self.config.trace_spans:
            _trace.enable()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._on_client, self.config.host, self.config.port
        )
        self._started = time.monotonic()
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT into a graceful drain (POSIX only)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.initiate_drain)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    def initiate_drain(self) -> None:
        """Stop accepting; let in-flight requests finish.  Idempotent."""
        if not self._draining.is_set():
            self._draining.set()
            if self._server is not None:
                self._server.close()

    async def serve_until_drained(self) -> int:
        """Block until a drain is requested, then wind down.

        Returns the number of requests that were still in flight when the
        drain began (0 for a quiet shutdown — the clean-exit signal the
        smoke test asserts on).
        """
        await self._draining.wait()
        draining_inflight = self.limiter.inflight + self.limiter.queued
        if self._server is not None:
            await self._server.wait_closed()
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_timeout)
        for t in self._conn_tasks:
            if not t.done():
                t.cancel()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        return draining_inflight

    async def aclose(self) -> None:
        """Hard stop (tests): drain immediately and drop connections."""
        self.initiate_drain()
        await self.serve_until_drained()

    # -- connection handling ---------------------------------------------------

    async def _on_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        requests: set[asyncio.Task] = set()

        async def send(obj: dict) -> None:
            async with write_lock:
                try:
                    writer.write(encode_frame(obj, self.config.max_frame_bytes))
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass  # peer is gone; the read loop will notice

        try:
            while True:
                try:
                    req = await read_frame(reader, self.config.max_frame_bytes)
                except FrameTooLarge as exc:
                    self.counters.protocol_errors += 1
                    _metrics.inc("serve.protocol_error", "frame_too_large")
                    await send(
                        {"status": "error", "code": "frame-too-large", "error": str(exc)}
                    )
                    break  # stream is unsynchronized; must close
                except ProtocolError as exc:
                    self.counters.protocol_errors += 1
                    _metrics.inc("serve.protocol_error", "malformed")
                    await send({"status": "error", "code": "bad-request", "error": str(exc)})
                    continue  # framing consumed the bad payload
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    self.counters.disconnects += 1
                    _metrics.inc("serve.disconnect")
                    break
                if req is None:
                    break  # clean EOF
                t = asyncio.create_task(self._dispatch(req, send))
                requests.add(t)
                t.add_done_callback(requests.discard)
        finally:
            # Client gone: cancel its outstanding requests so their
            # admission slots free up.  Coalesced pipeline work survives
            # the cancellation (see repro.serve.coalesce).
            for t in requests:
                if not t.done():
                    self.counters.disconnects += 1
                    _metrics.inc("serve.cancelled_by_disconnect")
                    t.cancel()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- request dispatch ------------------------------------------------------

    async def _dispatch(self, req: dict, send) -> None:
        op = req.get("op")
        rid = req.get("id")
        t0 = time.monotonic()
        self.counters.requests[op] = self.counters.requests.get(op, 0) + 1
        _metrics.inc("serve.request", str(op))
        try:
            if op == "ping":
                await send({"id": rid, "status": "ok", "result": "pong"})
                return
            if op == "stats":
                await send({"id": rid, "status": "ok", "result": self._stats()})
                return
            if op == "shutdown":
                await send({"id": rid, "status": "ok", "result": "draining"})
                self.initiate_drain()
                return
            if op not in PIPELINE_OPS:
                self.counters.errors += 1
                await send(
                    {
                        "id": rid,
                        "status": "error",
                        "code": "bad-request",
                        "error": f"unknown op {op!r} (known: "
                        f"{', '.join(PIPELINE_OPS + CONTROL_OPS)})",
                    }
                )
                return
            if self._draining.is_set():
                self.counters.rejected += 1
                await send(
                    {
                        "id": rid,
                        "status": "error",
                        "code": "shutting-down",
                        "error": "server is draining",
                    }
                )
                return
            await self._serve_pipeline_op(op, rid, req, send, t0)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never let one request kill the loop
            self.counters.errors += 1
            _metrics.inc("serve.error", "internal")
            await send(
                {
                    "id": rid,
                    "status": "error",
                    "code": "internal",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )

    async def _serve_pipeline_op(self, op, rid, req, send, t0) -> None:
        if op == "compile-wp":
            await self._serve_wp_op(rid, req, send, t0)
            return
        source = req.get("source")
        filename = req.get("filename", "<serve>")
        if not isinstance(source, str) or not isinstance(filename, str):
            self.counters.errors += 1
            await send(
                {
                    "id": rid,
                    "status": "error",
                    "code": "bad-request",
                    "error": "compile requests need string 'source' (and 'filename')",
                }
            )
            return
        wire_opts = req.get("options") or {}
        want = req.get("want", "summary")
        try:
            opts = options_from_wire(wire_opts)
        except ProtocolError as exc:
            self.counters.errors += 1
            await send(
                {"id": rid, "status": "error", "code": "bad-request", "error": str(exc)}
            )
            return
        try:
            slot = self.limiter.admit()
        except Rejected as exc:
            self.counters.rejected += 1
            _metrics.inc("serve.rejected")
            await send(
                {
                    "id": rid,
                    "status": "rejected",
                    "error": exc.reason,
                    "retry_after": exc.retry_after,
                }
            )
            return
        key = request_key(op, source, filename, wire_opts)
        try:
            async with slot:
                timeout = self.config.request_timeout or None
                result = await asyncio.wait_for(
                    self.coalescer.run(key, lambda: self._run_in_pool(op, source, filename, opts)),
                    timeout=timeout,
                )
        except asyncio.TimeoutError:
            self.counters.timeouts += 1
            _metrics.inc("serve.timeout")
            await send(
                {
                    "id": rid,
                    "status": "error",
                    "code": "timeout",
                    "error": f"request exceeded {self.config.request_timeout}s",
                }
            )
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.counters.errors += 1
            _metrics.inc("serve.error", "compile")
            await send(
                {
                    "id": rid,
                    "status": "error",
                    "code": "compile-error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        summary, comp = result
        payload = dict(summary)
        if want == "object":
            from .. import binfmt

            payload["object_b64"] = base64.b64encode(
                binfmt.encode(comp)
            ).decode("ascii")
        elapsed = time.monotonic() - t0
        self.limiter.observe_service_time(elapsed)
        self.latency.setdefault(op, Histogram()).observe(elapsed * 1e3)
        _metrics.observe(f"serve.latency_ms.{op}", elapsed * 1e3)
        self.counters.ok += 1
        await send({"id": rid, "status": "ok", "result": payload})

    async def _serve_wp_op(self, rid, req, send, t0) -> None:
        """``compile-wp``: link + compile a multi-unit program.

        The request carries ``units`` — ``[[filename, source], ...]`` —
        plus optional ``jobs``/``partition`` scheduling knobs; the
        compile rides :func:`~repro.driver.wpa.compile_whole_program`
        against the daemon's shared session, so whole-program artifacts
        land in (and warm from) the same cache as single-file requests.
        """
        import json as _json

        from ..linker import PARTITION_MODES

        op = "compile-wp"
        units = req.get("units")
        well_formed = (
            isinstance(units, list)
            and units
            and all(
                isinstance(u, (list, tuple))
                and len(u) == 2
                and isinstance(u[0], str)
                and isinstance(u[1], str)
                for u in units
            )
        )
        jobs = req.get("jobs", 1)
        partition = req.get("partition", "none")
        if not well_formed:
            self.counters.errors += 1
            await send(
                {
                    "id": rid,
                    "status": "error",
                    "code": "bad-request",
                    "error": "compile-wp requests need 'units': "
                    "[[filename, source], ...]",
                }
            )
            return
        if (
            not isinstance(jobs, int)
            or isinstance(jobs, bool)
            or not 0 <= jobs <= 64
            or partition not in PARTITION_MODES
        ):
            self.counters.errors += 1
            await send(
                {
                    "id": rid,
                    "status": "error",
                    "code": "bad-request",
                    "error": "compile-wp 'jobs' must be an int in [0, 64] and "
                    f"'partition' one of {', '.join(PARTITION_MODES)}",
                }
            )
            return
        wire_opts = req.get("options") or {}
        try:
            opts = options_from_wire(wire_opts)
        except ProtocolError as exc:
            self.counters.errors += 1
            await send(
                {"id": rid, "status": "error", "code": "bad-request", "error": str(exc)}
            )
            return
        try:
            slot = self.limiter.admit()
        except Rejected as exc:
            self.counters.rejected += 1
            _metrics.inc("serve.rejected")
            await send(
                {
                    "id": rid,
                    "status": "rejected",
                    "error": exc.reason,
                    "retry_after": exc.retry_after,
                }
            )
            return
        # The unit list is the "source" of this request; jobs/partition
        # fold into the coalescing key so only byte-identical schedules
        # coalesce (their results are identical either way, but their
        # reported partition stats are not).
        blob = _json.dumps(
            [[f, s] for f, s in units], ensure_ascii=False, separators=(",", ":")
        )
        key = request_key(
            op, blob, "<wp>", dict(wire_opts, _jobs=jobs, _partition=partition)
        )
        async def run() -> dict:
            # Leader-only body (the coalescer deduplicates followers).
            self.counters.pipeline_runs += 1
            _metrics.inc("serve.pipeline_run", op)
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._pool,
                self._execute_wp,
                [(f, s) for f, s in units],
                opts,
                jobs,
                partition,
            )

        try:
            async with slot:
                timeout = self.config.request_timeout or None
                result = await asyncio.wait_for(
                    self.coalescer.run(key, run),
                    timeout=timeout,
                )
        except asyncio.TimeoutError:
            self.counters.timeouts += 1
            _metrics.inc("serve.timeout")
            await send(
                {
                    "id": rid,
                    "status": "error",
                    "code": "timeout",
                    "error": f"request exceeded {self.config.request_timeout}s",
                }
            )
            return
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.counters.errors += 1
            _metrics.inc("serve.error", "compile")
            await send(
                {
                    "id": rid,
                    "status": "error",
                    "code": "compile-error",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            return
        elapsed = time.monotonic() - t0
        self.limiter.observe_service_time(elapsed)
        self.latency.setdefault(op, Histogram()).observe(elapsed * 1e3)
        _metrics.observe(f"serve.latency_ms.{op}", elapsed * 1e3)
        self.counters.ok += 1
        await send({"id": rid, "status": "ok", "result": result})

    def _execute_wp(self, units, opts: CompileOptions, jobs: int, partition: str):
        """Worker-thread body: whole-program compile on the shared session."""
        from ..driver.wpa import compile_whole_program

        with _trace.span("serve.execute", op="compile-wp", units=len(units)):
            wp = compile_whole_program(
                units,
                opts,
                whole_program=True,
                session=self.session,
                jobs=jobs,
                partition=partition,
            )
            stats = wp.total_dep_stats()
            plan = wp.partition_plan
            return {
                "units": {
                    fname: comp.cache_state or "cold"
                    for fname, comp in wp.units.items()
                },
                "image_functions": (
                    sorted(wp.image.functions) if wp.image is not None else []
                ),
                "image_sha256": (
                    program_digest(wp.image) if wp.image is not None else None
                ),
                "link_diagnostics": len(wp.link.diagnostics),
                "image_diagnostics": len(wp.image_diagnostics),
                "partition": (
                    plan.to_dict()
                    if plan is not None
                    else {
                        "mode": "none",
                        "partitions": 1,
                        "units": len(wp.units),
                        "skew": 1.0,
                        "cross_edges": 0,
                    }
                ),
                "dep_stats": {
                    "total_tests": stats.total_tests,
                    "gcc_yes": stats.gcc_yes,
                    "hli_yes": stats.hli_yes,
                    "combined_yes": stats.combined_yes,
                },
            }

    async def _run_in_pool(self, op, source, filename, opts):
        """Hand the CPU-bound pipeline to a worker thread."""
        self.counters.pipeline_runs += 1
        _metrics.inc("serve.pipeline_run", op)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, self._execute, op, source, filename, opts
        )

    def _execute(self, op, source, filename, opts: CompileOptions):
        """Worker-thread body: run the pipeline against the shared session."""
        with _trace.span("serve.execute", op=op, file=filename):
            if op == "lint" or op == "validate-claims":
                opts.lint = True
            comp = self.session.compile(source, filename, opts)
            summary = compile_summary(comp)
            if op in ("lint", "validate-claims"):
                report = comp.lint_report
                summary["lint"] = {
                    "findings": [
                        {"rule": d.rule.rule_id, "unit": d.unit, "message": d.message}
                        for d in (report.diagnostics if report else [])
                    ],
                    "claims_checked": dict(report.claims_checked) if report else {},
                    "clean": bool(report and not report.diagnostics),
                }
            return summary, comp

    # -- stats -----------------------------------------------------------------

    def _stats(self) -> dict:
        """The ``stats`` op's payload (also what ``repro-stats`` ingests)."""
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "config": {
                "workers": self.config.workers,
                "max_inflight": self.config.max_inflight,
                "max_queue": self.config.max_queue,
                "request_timeout": self.config.request_timeout,
                "cache_dir": self.config.cache_dir,
            },
            "queue_depth": self.limiter.queued,
            "inflight": self.limiter.inflight,
            "draining": self._draining.is_set(),
            "counters": {
                "requests": dict(self.counters.requests),
                "ok": self.counters.ok,
                "errors": self.counters.errors,
                "rejected": self.counters.rejected,
                "timeouts": self.counters.timeouts,
                "disconnects": self.counters.disconnects,
                "protocol_errors": self.counters.protocol_errors,
                "pipeline_runs": self.counters.pipeline_runs,
                "coalesced_hits": self.coalescer.coalesced_hits,
                "admitted": self.limiter.admitted,
            },
            "latency_ms": {op: h.to_dict() for op, h in sorted(self.latency.items())},
            "session_cache": self.session.stats.to_dict(),
        }
