"""repro — reproduction of "High-Level Information: An Approach for
Integrating Front-End and Back-End Compilers" (Cho et al., ICPP 1998).

Packages:

* :mod:`repro.frontend`  — MiniC lexer/parser/semantic analysis (the
  "SUIF parser" substitute);
* :mod:`repro.analysis`  — region trees, ITEMGEN, dependence/alias/REF-MOD
  analyses, HLI table construction (TBLCONST);
* :mod:`repro.hli`       — the HLI format: tables, serialization, query
  and maintenance APIs;
* :mod:`repro.backend`   — RTL lowering, HLI import/mapping, CSE, LICM,
  unrolling, and the basic-block list scheduler (the "GCC" substitute);
* :mod:`repro.machine`   — functional executor plus R4600-like and
  R10000-like timing models;
* :mod:`repro.workloads` — SPEC-shaped MiniC benchmark programs;
* :mod:`repro.driver`    — end-to-end compilation/timing drivers and the
  table-regeneration reports.
"""

__version__ = "1.0.0"

from .driver.compile import Compilation, CompileOptions, compile_source
from .driver.session import CompilationSession, compile_many, default_session

__all__ = [
    "Compilation",
    "CompilationSession",
    "CompileOptions",
    "compile_source",
    "compile_many",
    "default_session",
    "__version__",
]
