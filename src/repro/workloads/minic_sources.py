"""SPEC-shaped MiniC benchmark programs.

One program per row of the paper's Tables 1 and 2.  The originals (SPEC
CINT92/CFP92/CINT95/CFP95 plus GNU wc) are proprietary; each program here
is a from-scratch kernel with the same *character* as its namesake:

* integer codes: small basic blocks, pointer/char traffic, branchy
  control flow, few memory references per line;
* floating-point codes: deep affine loop nests over arrays, many memory
  references per line — the territory where front-end dependence
  analysis pays off.

Trip counts are scaled down so the functional executor finishes each run
in well under a second; the *shape* of the compile-time statistics (not
absolute dynamic counts) is what the reproduction targets.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# GNU wc — character/word/line counting over an input stream
# --------------------------------------------------------------------------

WC = """\
int nlines;
int nwords;
int nchars;
int buf[256];
int linelen[64];

int is_space(int c) {
    if (c == 32) return 1;
    if (c == 10) return 1;
    if (c == 9) return 1;
    return 0;
}

int fill_buffer(void) {
    int n, c;
    n = 0;
    c = getchar();
    while (c >= 0 && n < 256) {
        buf[n] = c;
        n = n + 1;
        c = getchar();
    }
    return n;
}

void count(int n) {
    int i, c, inword, curlen;
    inword = 0;
    curlen = 0;
    for (i = 0; i < n; i++) {
        c = buf[i];
        nchars = nchars + 1;
        if (c == 10) {
            if (nlines < 64) {
                linelen[nlines] = curlen;
            }
            nlines = nlines + 1;
            curlen = 0;
        } else {
            curlen = curlen + 1;
        }
        if (is_space(c)) {
            inword = 0;
        } else {
            if (inword == 0) {
                nwords = nwords + 1;
            }
            inword = 1;
        }
    }
}

int main() {
    int n, total;
    n = fill_buffer();
    while (n > 0) {
        count(n);
        n = fill_buffer();
    }
    total = 0;
    if (nlines < 64) {
        int k;
        for (k = 0; k < nlines; k++) {
            total = total + linelen[k];
        }
    }
    return nlines * 10000 + nwords * 100 + (nchars + total) % 100;
}
"""

WC_INPUT = ("the quick brown fox jumps over the lazy dog\n" * 40) + "tail line without newline"

# --------------------------------------------------------------------------
# 008.espresso — boolean function minimizer: bitset cube operations
# --------------------------------------------------------------------------

ESPRESSO = """\
int cubes[256];
int cover[256];
int ncubes;
int ncover;
int tmp_set[8];

int cube_intersect(int i, int j) {
    int k, empty;
    empty = 0;
    for (k = 0; k < 8; k++) {
        tmp_set[k] = cubes[i * 8 + k] & cubes[j * 8 + k];
        if (tmp_set[k] == 0) {
            empty = 1;
        }
    }
    return empty;
}

int cube_covers(int i, int j) {
    int k;
    for (k = 0; k < 8; k++) {
        if ((cubes[i * 8 + k] | cubes[j * 8 + k]) != cubes[i * 8 + k]) {
            return 0;
        }
    }
    return 1;
}

void expand_cube(int i) {
    int k, bits;
    for (k = 0; k < 8; k++) {
        bits = cubes[i * 8 + k];
        bits = bits | (bits << 1);
        bits = bits & 65535;
        cubes[i * 8 + k] = bits;
    }
}

int irredundant(void) {
    int i, j, kept;
    kept = 0;
    for (i = 0; i < ncubes; i++) {
        int covered;
        covered = 0;
        for (j = 0; j < ncubes; j++) {
            if (i != j && cube_covers(j, i)) {
                covered = 1;
            }
        }
        if (covered == 0) {
            for (j = 0; j < 8; j++) {
                cover[kept * 8 + j] = cubes[i * 8 + j];
            }
            kept = kept + 1;
        }
    }
    return kept;
}

int main() {
    int i, k, sum;
    ncubes = 24;
    for (i = 0; i < ncubes; i++) {
        for (k = 0; k < 8; k++) {
            cubes[i * 8 + k] = ((i * 2654435761) >> (k + 3)) & 4095;
        }
    }
    for (i = 0; i < ncubes; i++) {
        if (cube_intersect(i, (i + 1) % 24)) {
            expand_cube(i);
        }
    }
    ncover = irredundant();
    sum = 0;
    for (i = 0; i < ncover * 8; i++) {
        sum = sum ^ cover[i];
    }
    return sum + ncover;
}
"""

# --------------------------------------------------------------------------
# 023.eqntott — truth-table generation: comparison-driven sorting
# --------------------------------------------------------------------------

EQNTOTT = """\
int terms[512];
int perm[128];
int nterm;

int cmp_terms(int a, int b) {
    int k, va, vb;
    for (k = 0; k < 4; k++) {
        va = terms[a * 4 + k];
        vb = terms[b * 4 + k];
        if (va < vb) return -1;
        if (va > vb) return 1;
    }
    return 0;
}

void sort_terms(void) {
    int i, j, t;
    for (i = 1; i < nterm; i++) {
        j = i;
        while (j > 0 && cmp_terms(perm[j - 1], perm[j]) > 0) {
            t = perm[j - 1];
            perm[j - 1] = perm[j];
            perm[j] = t;
            j = j - 1;
        }
    }
}

int count_unique(void) {
    int i, uniq;
    uniq = 1;
    for (i = 1; i < nterm; i++) {
        if (cmp_terms(perm[i - 1], perm[i]) != 0) {
            uniq = uniq + 1;
        }
    }
    return uniq;
}

int main() {
    int i, k;
    nterm = 64;
    for (i = 0; i < nterm; i++) {
        perm[i] = i;
        for (k = 0; k < 4; k++) {
            terms[i * 4 + k] = ((i * 1103515245 + k * 12345) >> 5) & 15;
        }
    }
    sort_terms();
    return count_unique();
}
"""

# --------------------------------------------------------------------------
# 129.compress — LZW-style hash-table compression
# --------------------------------------------------------------------------

COMPRESS = """\
int htab[512];
int codetab[512];
int inbuf[1024];
int outbuf[1024];
int free_ent;
int out_count;

void cl_hash(void) {
    int i;
    for (i = 0; i < 512; i++) {
        htab[i] = -1;
        codetab[i] = 0;
    }
}

int compress_block(int n) {
    int i, ent, c, fcode, h, disp, probes;
    cl_hash();
    free_ent = 257;
    out_count = 0;
    ent = inbuf[0];
    for (i = 1; i < n; i++) {
        c = inbuf[i];
        fcode = (c << 12) + ent;
        h = ((c << 4) ^ ent) & 511;
        probes = 0;
        while (htab[h] >= 0 && htab[h] != fcode && probes < 16) {
            disp = 511 - h;
            if (disp == 0) disp = 1;
            h = h - disp;
            if (h < 0) h = h + 512;
            probes = probes + 1;
        }
        if (htab[h] == fcode) {
            ent = codetab[h];
        } else {
            outbuf[out_count] = ent;
            out_count = out_count + 1;
            if (free_ent < 4096) {
                codetab[h] = free_ent;
                htab[h] = fcode;
                free_ent = free_ent + 1;
            }
            ent = c;
        }
    }
    outbuf[out_count] = ent;
    out_count = out_count + 1;
    return out_count;
}

int main() {
    int i, n, total;
    n = 768;
    for (i = 0; i < n; i++) {
        inbuf[i] = (i * 31 + (i >> 3)) % 64;
    }
    total = compress_block(n);
    return total + outbuf[total / 2];
}
"""

# --------------------------------------------------------------------------
# 015.doduc — Monte-Carlo nuclear reactor kernels: scalar-heavy fp code
# --------------------------------------------------------------------------

DODUC = """\
double state[64];
double coef[64];
double fluxes[64];
double leakage;

double interp(double x, int base) {
    double x0, x1, y0, y1;
    x0 = coef[base];
    x1 = coef[base + 1];
    y0 = coef[base + 2];
    y1 = coef[base + 3];
    if (x1 - x0 == 0.0) return y0;
    return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
}

void transport_step(void) {
    int i;
    double sigma, flux, fold;
    for (i = 1; i < 63; i++) {
        sigma = interp(state[i], (i % 15) * 4);
        flux = state[i - 1] * 0.3 + state[i] * 0.4 + state[i + 1] * 0.3;
        fold = fluxes[i];
        fluxes[i] = flux * sigma + fold * 0.05;
        leakage = leakage + fluxes[i] - fold;
    }
}

void relax_state(void) {
    int i;
    for (i = 1; i < 63; i++) {
        state[i] = state[i] + 0.1 * (fluxes[i] - state[i]);
    }
}

int main() {
    int i, iter;
    for (i = 0; i < 64; i++) {
        state[i] = 1.0 + 0.01 * i;
        coef[i] = 0.5 + 0.02 * i;
        fluxes[i] = 0.0;
    }
    for (iter = 0; iter < 12; iter++) {
        transport_step();
        relax_state();
    }
    return leakage > 0.0;
}
"""

# --------------------------------------------------------------------------
# 034.mdljdp2 — molecular dynamics, double precision pair forces
# --------------------------------------------------------------------------

MDLJDP2 = """\
double x[96];
double y[96];
double z[96];
double fx[96];
double fy[96];
double fz[96];
double vx[96];
double vy[96];
double vz[96];
double epot;

void forces(int n) {
    int i, j;
    double dx, dy, dz, r2, r6, ff;
    for (i = 0; i < n; i++) {
        fx[i] = 0.0;
        fy[i] = 0.0;
        fz[i] = 0.0;
    }
    epot = 0.0;
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            dx = x[i] - x[j];
            dy = y[i] - y[j];
            dz = z[i] - z[j];
            r2 = dx * dx + dy * dy + dz * dz + 0.01;
            r6 = 1.0 / (r2 * r2 * r2);
            ff = 24.0 * r6 * (2.0 * r6 - 1.0) / r2;
            epot = epot + 4.0 * r6 * (r6 - 1.0);
            fx[i] = fx[i] + dx * ff;
            fy[i] = fy[i] + dy * ff;
            fz[i] = fz[i] + dz * ff;
            fx[j] = fx[j] - dx * ff;
            fy[j] = fy[j] - dy * ff;
            fz[j] = fz[j] - dz * ff;
        }
    }
}

void advance(int n, double dt) {
    int i;
    for (i = 0; i < n; i++) {
        vx[i] = vx[i] + fx[i] * dt;
        vy[i] = vy[i] + fy[i] * dt;
        vz[i] = vz[i] + fz[i] * dt;
        x[i] = x[i] + vx[i] * dt;
        y[i] = y[i] + vy[i] * dt;
        z[i] = z[i] + vz[i] * dt;
    }
}

int main() {
    int i, step, n;
    n = 24;
    for (i = 0; i < n; i++) {
        x[i] = (i % 4) * 1.2;
        y[i] = ((i / 4) % 4) * 1.2;
        z[i] = (i / 16) * 1.2;
        vx[i] = 0.0;
        vy[i] = 0.0;
        vz[i] = 0.0;
    }
    for (step = 0; step < 6; step++) {
        forces(n);
        advance(n, 0.004);
    }
    return epot < 0.0;
}
"""

# --------------------------------------------------------------------------
# 048.ora — optical ray tracing through surfaces: sqrt-heavy straightline fp
# --------------------------------------------------------------------------

ORA = """\
double surf[64];
double result[128];

double trace_ray(double px, double qx, int nsurf) {
    int s;
    double p, q, radius, dist, disc, root;
    p = px;
    q = qx;
    for (s = 0; s < nsurf; s++) {
        radius = surf[s * 2];
        dist = surf[s * 2 + 1];
        disc = radius * radius - p * p;
        if (disc < 0.0) {
            disc = 0.0;
        }
        root = sqrt(disc + 1.0);
        q = q + p * dist / root;
        p = p * 0.98 + q * 0.02 - dist / (root + radius);
    }
    return p * p + q * q;
}

int main() {
    int r, s;
    double acc;
    for (s = 0; s < 32; s++) {
        surf[s * 2] = 4.0 + 0.1 * s;
        surf[s * 2 + 1] = 1.0 + 0.02 * s;
    }
    acc = 0.0;
    for (r = 0; r < 64; r++) {
        result[r] = trace_ray(0.1 + 0.01 * r, 0.05 * r, 24);
        acc = acc + result[r];
    }
    return acc > 0.0;
}
"""

# --------------------------------------------------------------------------
# 052.alvinn — neural network backprop: dense matrix-vector fp loops
# --------------------------------------------------------------------------

ALVINN = """\
double in_units[32];
double hid_units[16];
double out_units[8];
double in_weights[512];
double out_weights[128];
double hid_deltas[16];
double out_deltas[8];

void forward(void) {
    int i, j;
    double sum;
    for (j = 0; j < 16; j++) {
        sum = 0.0;
        for (i = 0; i < 32; i++) {
            sum = sum + in_units[i] * in_weights[j * 32 + i];
        }
        hid_units[j] = 1.0 / (1.0 + exp(-sum));
    }
    for (j = 0; j < 8; j++) {
        sum = 0.0;
        for (i = 0; i < 16; i++) {
            sum = sum + hid_units[i] * out_weights[j * 16 + i];
        }
        out_units[j] = 1.0 / (1.0 + exp(-sum));
    }
}

void backward(double eta) {
    int i, j;
    double err;
    for (j = 0; j < 8; j++) {
        err = (j % 2) - out_units[j];
        out_deltas[j] = err * out_units[j] * (1.0 - out_units[j]);
    }
    for (i = 0; i < 16; i++) {
        err = 0.0;
        for (j = 0; j < 8; j++) {
            err = err + out_deltas[j] * out_weights[j * 16 + i];
        }
        hid_deltas[i] = err * hid_units[i] * (1.0 - hid_units[i]);
    }
    for (j = 0; j < 8; j++) {
        for (i = 0; i < 16; i++) {
            out_weights[j * 16 + i] = out_weights[j * 16 + i]
                + eta * out_deltas[j] * hid_units[i];
        }
    }
    for (j = 0; j < 16; j++) {
        for (i = 0; i < 32; i++) {
            in_weights[j * 32 + i] = in_weights[j * 32 + i]
                + eta * hid_deltas[j] * in_units[i];
        }
    }
}

int main() {
    int i, epoch;
    for (i = 0; i < 32; i++) {
        in_units[i] = 0.5 + 0.01 * (i % 7);
    }
    for (i = 0; i < 512; i++) {
        in_weights[i] = 0.01 * ((i * 37) % 19 - 9);
    }
    for (i = 0; i < 128; i++) {
        out_weights[i] = 0.01 * ((i * 53) % 17 - 8);
    }
    for (epoch = 0; epoch < 4; epoch++) {
        forward();
        backward(0.3);
    }
    return out_units[0] > 0.0;
}
"""

# --------------------------------------------------------------------------
# 077.mdljsp2 — molecular dynamics, single precision (float arrays)
# --------------------------------------------------------------------------

MDLJSP2 = """\
float sx[96];
float sy[96];
float sfx[96];
float sfy[96];
float svx[96];
float svy[96];
float senergy;

void sforces(int n) {
    int i, j;
    float dx, dy, r2, r6, ff;
    for (i = 0; i < n; i++) {
        sfx[i] = 0.0;
        sfy[i] = 0.0;
    }
    senergy = 0.0;
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            dx = sx[i] - sx[j];
            dy = sy[i] - sy[j];
            r2 = dx * dx + dy * dy + 0.01;
            r6 = 1.0 / (r2 * r2 * r2);
            ff = 24.0 * r6 * (2.0 * r6 - 1.0) / r2;
            senergy = senergy + 4.0 * r6 * (r6 - 1.0);
            sfx[i] = sfx[i] + dx * ff;
            sfy[i] = sfy[i] + dy * ff;
            sfx[j] = sfx[j] - dx * ff;
            sfy[j] = sfy[j] - dy * ff;
        }
    }
}

void sadvance(int n, float dt) {
    int i;
    for (i = 0; i < n; i++) {
        svx[i] = svx[i] + sfx[i] * dt;
        svy[i] = svy[i] + sfy[i] * dt;
        sx[i] = sx[i] + svx[i] * dt;
        sy[i] = sy[i] + svy[i] * dt;
    }
}

int main() {
    int i, step, n;
    n = 28;
    for (i = 0; i < n; i++) {
        sx[i] = (i % 6) * 1.1;
        sy[i] = (i / 6) * 1.1;
        svx[i] = 0.0;
        svy[i] = 0.0;
    }
    for (step = 0; step < 7; step++) {
        sforces(n);
        sadvance(n, 0.003);
    }
    return senergy < 0.0;
}
"""

# --------------------------------------------------------------------------
# 101.tomcatv — vectorized 2-D mesh generation with relaxation
# --------------------------------------------------------------------------

TOMCATV = """\
double xx[1156];
double yy[1156];
double rx[1156];
double ry[1156];

int main() {
    int i, j, iter, n;
    double xxij, yyij, a, b, relax;
    n = 34;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            xx[i * 34 + j] = i * 0.1 + j * 0.01;
            yy[i * 34 + j] = i * 0.01 - j * 0.1;
        }
    }
    relax = 0.7;
    for (iter = 0; iter < 3; iter++) {
        for (i = 1; i < 33; i++) {
            for (j = 1; j < 33; j++) {
                xxij = xx[i * 34 + j];
                yyij = yy[i * 34 + j];
                a = xx[i * 34 + j - 1] + xx[i * 34 + j + 1]
                    + xx[(i - 1) * 34 + j] + xx[(i + 1) * 34 + j];
                b = yy[i * 34 + j - 1] + yy[i * 34 + j + 1]
                    + yy[(i - 1) * 34 + j] + yy[(i + 1) * 34 + j];
                rx[i * 34 + j] = a * 0.25 - xxij;
                ry[i * 34 + j] = b * 0.25 - yyij;
            }
        }
        for (i = 1; i < 33; i++) {
            for (j = 1; j < 33; j++) {
                xx[i * 34 + j] = xx[i * 34 + j] + relax * rx[i * 34 + j];
                yy[i * 34 + j] = yy[i * 34 + j] + relax * ry[i * 34 + j];
            }
        }
    }
    return xx[17 * 34 + 17] > 0.0;
}
"""

# --------------------------------------------------------------------------
# 102.swim — shallow water equations: 2-D finite difference stencils
# --------------------------------------------------------------------------

SWIM = """\
double uu[900];
double vv[900];
double pp[900];
double unew[900];
double vnew[900];
double pnew[900];

int main() {
    int i, j, step, m;
    double du, dv, dp;
    m = 30;
    for (i = 0; i < m; i++) {
        for (j = 0; j < m; j++) {
            uu[i * 30 + j] = 0.1 * i - 0.05 * j;
            vv[i * 30 + j] = 0.05 * i + 0.1 * j;
            pp[i * 30 + j] = 100.0 + i * j * 0.01;
        }
    }
    for (step = 0; step < 4; step++) {
        for (i = 1; i < 29; i++) {
            for (j = 1; j < 29; j++) {
                du = uu[i * 30 + j + 1] - uu[i * 30 + j - 1]
                   + uu[(i + 1) * 30 + j] - uu[(i - 1) * 30 + j];
                dv = vv[i * 30 + j + 1] - vv[i * 30 + j - 1]
                   + vv[(i + 1) * 30 + j] - vv[(i - 1) * 30 + j];
                dp = pp[i * 30 + j + 1] + pp[i * 30 + j - 1]
                   + pp[(i + 1) * 30 + j] + pp[(i - 1) * 30 + j]
                   - 4.0 * pp[i * 30 + j];
                unew[i * 30 + j] = uu[i * 30 + j] + 0.1 * du - 0.05 * dp;
                vnew[i * 30 + j] = vv[i * 30 + j] + 0.1 * dv - 0.05 * dp;
                pnew[i * 30 + j] = pp[i * 30 + j] - 0.1 * (du + dv);
            }
        }
        for (i = 1; i < 29; i++) {
            for (j = 1; j < 29; j++) {
                uu[i * 30 + j] = unew[i * 30 + j];
                vv[i * 30 + j] = vnew[i * 30 + j];
                pp[i * 30 + j] = pnew[i * 30 + j];
            }
        }
    }
    return pp[15 * 30 + 15] > 0.0;
}
"""

# --------------------------------------------------------------------------
# 103.su2cor — quantum physics: lattice gauge sweeps with correlation sums
# --------------------------------------------------------------------------

SU2COR = """\
double lattice[1024];
double corr[32];
double action;

void sweep(int n) {
    int i, mu;
    double link, staple, newlink;
    for (i = 1; i < n - 1; i++) {
        for (mu = 0; mu < 4; mu++) {
            link = lattice[i * 4 + mu];
            staple = lattice[(i - 1) * 4 + mu] + lattice[(i + 1) * 4 + mu];
            newlink = link + 0.05 * (staple - 2.0 * link);
            lattice[i * 4 + mu] = newlink;
            action = action + newlink * staple;
        }
    }
}

void correlate(int n) {
    int t, i;
    double sum;
    for (t = 0; t < 32; t++) {
        sum = 0.0;
        for (i = 0; i < n - t; i++) {
            sum = sum + lattice[i * 4] * lattice[(i + t) * 4];
        }
        corr[t] = sum;
    }
}

int main() {
    int i, iter, n;
    n = 128;
    for (i = 0; i < n * 4; i++) {
        lattice[i] = 1.0 + 0.001 * ((i * 17) % 23);
    }
    action = 0.0;
    for (iter = 0; iter < 4; iter++) {
        sweep(n);
    }
    correlate(n);
    return corr[0] > corr[31];
}
"""

# --------------------------------------------------------------------------
# 107.mgrid — multigrid solver: 3-D 27-point stencil smoothing
# --------------------------------------------------------------------------

MGRID = """\
double grid_u[1728];
double grid_r[1728];

void smooth(int n) {
    int i, j, k;
    double s;
    for (i = 1; i < n - 1; i++) {
        for (j = 1; j < n - 1; j++) {
            for (k = 1; k < n - 1; k++) {
                s = grid_u[((i - 1) * n + j) * n + k]
                  + grid_u[((i + 1) * n + j) * n + k]
                  + grid_u[(i * n + j - 1) * n + k]
                  + grid_u[(i * n + j + 1) * n + k]
                  + grid_u[(i * n + j) * n + k - 1]
                  + grid_u[(i * n + j) * n + k + 1];
                grid_r[(i * n + j) * n + k] =
                    grid_u[(i * n + j) * n + k] * 0.5 + s * 0.0833;
            }
        }
    }
    for (i = 1; i < n - 1; i++) {
        for (j = 1; j < n - 1; j++) {
            for (k = 1; k < n - 1; k++) {
                grid_u[(i * n + j) * n + k] = grid_r[(i * n + j) * n + k];
            }
        }
    }
}

int main() {
    int i, cycle, n;
    n = 12;
    for (i = 0; i < n * n * n; i++) {
        grid_u[i] = 0.01 * ((i * 7) % 13);
    }
    for (cycle = 0; cycle < 2; cycle++) {
        smooth(n);
    }
    return grid_u[(6 * 12 + 6) * 12 + 6] > 0.0;
}
"""

# --------------------------------------------------------------------------
# 141.apsi — mesoscale weather: mixed pollutant/temperature field updates
# --------------------------------------------------------------------------

APSI = """\
double temp_f[768];
double wind_u[768];
double wind_w[768];
double pollut[768];
double emiss[32];

void advect(int nx, int nz) {
    int i, k;
    double flux_x, flux_z;
    for (i = 1; i < nx - 1; i++) {
        for (k = 1; k < nz - 1; k++) {
            flux_x = wind_u[i * nz + k] * (pollut[(i + 1) * nz + k]
                - pollut[(i - 1) * nz + k]) * 0.5;
            flux_z = wind_w[i * nz + k] * (pollut[i * nz + k + 1]
                - pollut[i * nz + k - 1]) * 0.5;
            pollut[i * nz + k] = pollut[i * nz + k] - 0.1 * (flux_x + flux_z);
        }
    }
}

void diffuse_temp(int nx, int nz) {
    int i, k;
    double lap;
    for (i = 1; i < nx - 1; i++) {
        for (k = 1; k < nz - 1; k++) {
            lap = temp_f[(i + 1) * nz + k] + temp_f[(i - 1) * nz + k]
                + temp_f[i * nz + k + 1] + temp_f[i * nz + k - 1]
                - 4.0 * temp_f[i * nz + k];
            temp_f[i * nz + k] = temp_f[i * nz + k] + 0.05 * lap;
        }
    }
}

void add_sources(int nx, int nz) {
    int i;
    for (i = 1; i < nx - 1; i++) {
        pollut[i * nz + 1] = pollut[i * nz + 1] + emiss[i % 32];
    }
}

int main() {
    int i, k, step, nx, nz;
    nx = 32;
    nz = 24;
    for (i = 0; i < nx; i++) {
        for (k = 0; k < nz; k++) {
            temp_f[i * nz + k] = 280.0 + 0.1 * k;
            wind_u[i * nz + k] = 1.0 + 0.01 * i;
            wind_w[i * nz + k] = 0.1;
            pollut[i * nz + k] = 0.0;
        }
    }
    for (i = 0; i < 32; i++) {
        emiss[i] = 0.01 * (i % 5);
    }
    for (step = 0; step < 4; step++) {
        add_sources(nx, nz);
        advect(nx, nz);
        diffuse_temp(nx, nz);
    }
    return pollut[16 * 24 + 2] > 0.0;
}
"""
