"""The benchmark suite: one spec per row of the paper's Tables 1/2."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from . import minic_sources as S


@dataclass(frozen=True)
class PaperRow:
    """The paper's published numbers for one benchmark (for comparison)."""

    code_lines: int
    hli_kb: int
    hli_per_line: int
    total_tests: int
    tests_per_line: float
    gcc_pct: int
    hli_pct: int
    combined_pct: int
    reduction_pct: int
    speedup_r4600: float
    speedup_r10000: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """One runnable benchmark program."""

    name: str
    suite: str
    source: str
    is_float: bool
    input_text: str = ""
    entry: str = "main"
    paper: Optional[PaperRow] = None


BENCHMARKS: list[BenchmarkSpec] = [
    BenchmarkSpec(
        name="wc",
        suite="GNU",
        source=S.WC,
        is_float=False,
        input_text=S.WC_INPUT,
        paper=PaperRow(972, 11, 12, 113, 0.12, 35, 18, 18, 50, 1.00, 1.00),
    ),
    BenchmarkSpec(
        name="008.espresso",
        suite="CINT92",
        source=S.ESPRESSO,
        is_float=False,
        paper=PaperRow(37074, 613, 17, 4166, 0.11, 63, 32, 24, 62, 1.00, 1.00),
    ),
    BenchmarkSpec(
        name="023.eqntott",
        suite="CINT92",
        source=S.EQNTOTT,
        is_float=False,
        paper=PaperRow(6269, 99, 16, 399, 0.06, 62, 48, 30, 52, 1.01, 1.05),
    ),
    BenchmarkSpec(
        name="129.compress",
        suite="CINT95",
        source=S.COMPRESS,
        is_float=False,
        paper=PaperRow(2235, 21, 10, 274, 0.12, 20, 14, 14, 34, 1.06, 1.07),
    ),
    BenchmarkSpec(
        name="015.doduc",
        suite="CFP92",
        source=S.DODUC,
        is_float=True,
        paper=PaperRow(25228, 1310, 53, 10992, 0.44, 70, 30, 26, 63, 1.00, 1.03),
    ),
    BenchmarkSpec(
        name="034.mdljdp2",
        suite="CFP92",
        source=S.MDLJDP2,
        is_float=True,
        paper=PaperRow(6905, 121, 18, 3013, 0.44, 58, 13, 9, 85, 1.08, 1.42),
    ),
    BenchmarkSpec(
        name="048.ora",
        suite="CFP92",
        source=S.ORA,
        is_float=True,
        paper=PaperRow(1249, 29, 24, 363, 0.29, 14, 22, 9, 35, 1.00, 1.00),
    ),
    BenchmarkSpec(
        name="052.alvinn",
        suite="CFP92",
        source=S.ALVINN,
        is_float=True,
        paper=PaperRow(475, 7, 15, 48, 0.10, 98, 42, 42, 57, 1.01, 1.02),
    ),
    BenchmarkSpec(
        name="077.mdljsp2",
        suite="CFP92",
        source=S.MDLJSP2,
        is_float=True,
        paper=PaperRow(4865, 109, 23, 2854, 0.59, 62, 14, 9, 85, 1.19, 1.59),
    ),
    BenchmarkSpec(
        name="101.tomcatv",
        suite="CFP95",
        source=S.TOMCATV,
        is_float=True,
        paper=PaperRow(780, 17, 22, 286, 0.37, 67, 10, 5, 93, 1.00, 1.01),
    ),
    BenchmarkSpec(
        name="102.swim",
        suite="CFP95",
        source=S.SWIM,
        is_float=True,
        paper=PaperRow(1124, 76, 69, 872, 0.78, 96, 10, 9, 90, 1.03, 1.04),
    ),
    BenchmarkSpec(
        name="103.su2cor",
        suite="CFP95",
        source=S.SU2COR,
        is_float=True,
        paper=PaperRow(6759, 239, 36, 4192, 0.62, 85, 38, 35, 59, 1.02, 1.08),
    ),
    BenchmarkSpec(
        name="107.mgrid",
        suite="CFP95",
        source=S.MGRID,
        is_float=True,
        paper=PaperRow(1725, 35, 21, 517, 0.30, 71, 64, 60, 15, 1.00, 1.01),
    ),
    BenchmarkSpec(
        name="141.apsi",
        suite="CFP95",
        source=S.APSI,
        is_float=True,
        paper=PaperRow(21921, 442, 21, 22347, 1.02, 36, 29, 24, 33, 1.00, 1.01),
    ),
]


def by_name(name: str) -> BenchmarkSpec:
    for b in BENCHMARKS:
        if b.name == name:
            return b
    raise KeyError(name)


def integer_benchmarks() -> list[BenchmarkSpec]:
    return [b for b in BENCHMARKS if not b.is_float]


def float_benchmarks() -> list[BenchmarkSpec]:
    return [b for b in BENCHMARKS if b.is_float]
