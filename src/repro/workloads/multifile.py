"""Hand-written multi-unit workloads for whole-program validation.

Each workload is a small MiniC program split over 2–3 translation units
with cross-unit calls on shared globals.  They are constructed so the
linked REF/MOD summaries have *narrow* effects — the per-file compile
must assume every extern call clobbers all of memory, while the
whole-program compile learns the callee touches only its own counters —
so ``--whole-program`` validation can demand a strict dependence-edge
reduction on top of semantic agreement.

The third workload mixes a may-point-anywhere pointer deref (which folds
to TOP even under linking: no unsound deletion allowed) with a narrow
counter helper, exercising both halves of the adapter's conversion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MultiFileWorkload:
    """One multi-unit program: a name plus ``(filename, source)`` units."""

    name: str
    units: tuple

    def sources(self) -> list:
        return list(self.units)


_COUNTERS_U0 = """\
int data[32];
int sum;

extern int bump(int k);
extern int weigh(int k);

int main() {
    int i;
    int acc;
    sum = 0;
    for (i = 0; i < 32; i++) {
        data[i] = i * 7 - 3;
    }
    acc = 0;
    for (i = 0; i < 32; i++) {
        acc = acc + bump(data[i]);
        acc = acc + data[i];
    }
    acc = acc + weigh(acc);
    printf("acc=%d\\n", acc);
    printf("sum=%d\\n", sum);
    return acc & 65535;
}
"""

_COUNTERS_U1 = """\
extern int data[32];
extern int sum;
int tally;

int bump(int k) {
    tally = tally + k;
    return tally & 255;
}

int weigh(int k) {
    int i;
    int t;
    t = 0;
    for (i = 0; i < 32; i++) {
        t = t + data[i];
    }
    sum = sum + t;
    return (t ^ k) & 1023;
}
"""

_STAGES_U0 = """\
int src[16];
int checksum;

extern int stage1(int i);

int main() {
    int i;
    int r;
    checksum = 0;
    for (i = 0; i < 16; i++) {
        src[i] = i * i + 1;
    }
    r = 0;
    for (i = 0; i < 16; i++) {
        r = r + stage1(i);
        checksum = checksum + src[i];
    }
    printf("r=%d\\n", r);
    printf("checksum=%d\\n", checksum);
    return (r + checksum) & 65535;
}
"""

_STAGES_U1 = """\
extern int src[16];
extern int stage2(int v);
int hist1;

int stage1(int i) {
    int v;
    v = src[(i) & 15];
    hist1 = hist1 + v;
    return stage2(v);
}
"""

_STAGES_U2 = """\
int hist2;

int stage2(int v) {
    hist2 = hist2 + (v | 3);
    return (hist2 ^ v) & 4095;
}
"""

_ALIASING_U0 = """\
int left[16];
int right[16];
int *cur;
int total;

extern int scale(int k);
extern int note(int k);

int main() {
    int i;
    int t;
    for (i = 0; i < 16; i++) {
        left[i] = i + 1;
        right[i] = 31 - i;
    }
    cur = left;
    t = scale(3);
    cur = right;
    t = t + scale(5);
    total = 0;
    for (i = 0; i < 16; i++) {
        t = t + note(left[i]);
        total = total + right[i];
    }
    printf("t=%d\\n", t);
    printf("total=%d\\n", total);
    return (t + total) & 65535;
}
"""

_ALIASING_U1 = """\
extern int *cur;
int marks;

int scale(int k) {
    int i;
    for (i = 0; i < 16; i++) {
        (*cur) = (*cur) + k;
    }
    return k;
}

int note(int k) {
    marks = marks + k;
    return marks & 511;
}
"""


WHOLE_PROGRAM_WORKLOADS: list[MultiFileWorkload] = [
    MultiFileWorkload(
        name="counters",
        units=(("u0.c", _COUNTERS_U0), ("u1.c", _COUNTERS_U1)),
    ),
    MultiFileWorkload(
        name="stages",
        units=(("u0.c", _STAGES_U0), ("u1.c", _STAGES_U1), ("u2.c", _STAGES_U2)),
    ),
    MultiFileWorkload(
        name="aliasing",
        units=(("u0.c", _ALIASING_U0), ("u1.c", _ALIASING_U1)),
    ),
]


def wp_by_name(name: str) -> MultiFileWorkload:
    for w in WHOLE_PROGRAM_WORKLOADS:
        if w.name == name:
            return w
    raise KeyError(name)
