"""SPEC-shaped benchmark programs and parametric workload generators."""

from .generators import (
    ReductionParams,
    StencilParams,
    random_affine_loop,
    reduction_program,
    stencil_program,
)
from .multifile import MultiFileWorkload, WHOLE_PROGRAM_WORKLOADS, wp_by_name
from .suite import (
    BENCHMARKS,
    BenchmarkSpec,
    PaperRow,
    by_name,
    float_benchmarks,
    integer_benchmarks,
)

__all__ = [
    "MultiFileWorkload",
    "WHOLE_PROGRAM_WORKLOADS",
    "wp_by_name",
    "ReductionParams",
    "StencilParams",
    "random_affine_loop",
    "reduction_program",
    "stencil_program",
    "BENCHMARKS",
    "BenchmarkSpec",
    "PaperRow",
    "by_name",
    "float_benchmarks",
    "integer_benchmarks",
]
