"""Parametric MiniC workload generators.

Used by property tests (random-but-structured programs whose semantics
can be predicted) and by the scaling ablation benchmarks (HLI size as a
function of program shape).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class StencilParams:
    """A 1-D stencil kernel family."""

    arrays: int = 3
    size: int = 64
    iters: int = 4
    radius: int = 1
    dtype: str = "double"


def stencil_program(p: StencilParams) -> str:
    """Generate a stencil program: ``a0`` is updated from its neighbours
    and the other arrays; every array is touched every iteration."""
    names = [f"a{k}" for k in range(p.arrays)]
    decls = "\n".join(f"{p.dtype} {n}[{p.size}];" for n in names)
    reads = " + ".join(
        f"{n}[i - {p.radius}] + {n}[i + {p.radius}]" for n in names[1:]
    ) or "0.0"
    updates = "\n".join(
        f"        {n}[i] = {n}[i] * 0.5 + a0[i] * 0.25;" for n in names[1:]
    )
    return f"""{decls}

int main() {{
    int i, t;
    for (i = 0; i < {p.size}; i++) {{
{chr(10).join(f'        {n}[i] = 0.01 * i + {k}.0;' for k, n in enumerate(names))}
    }}
    for (t = 0; t < {p.iters}; t++) {{
        for (i = {p.radius}; i < {p.size - p.radius}; i++) {{
            a0[i] = ({reads}) * 0.125 + a0[i];
{updates}
        }}
    }}
    return a0[{p.size // 2}] > 0.0;
}}
"""


@dataclass(frozen=True)
class ReductionParams:
    """An integer reduction-chain family (small basic blocks)."""

    arrays: int = 2
    size: int = 64
    stride: int = 1


def reduction_program(p: ReductionParams) -> str:
    names = [f"v{k}" for k in range(p.arrays)]
    decls = "\n".join(f"int {n}[{p.size}];" for n in names)
    sums = "\n".join(
        f"        total = total + {n}[i];" for n in names
    )
    return f"""{decls}
int total;

int main() {{
    int i;
    for (i = 0; i < {p.size}; i++) {{
{chr(10).join(f'        {n}[i] = i * {k + 3};' for k, n in enumerate(names))}
    }}
    total = 0;
    for (i = 0; i < {p.size}; i += {p.stride}) {{
{sums}
    }}
    return total;
}}
"""


class RandomProgramBuilder:
    """Structured random MiniC generator for differential fuzzing.

    Produces programs that always terminate and never fault: loops are
    bounded counted loops, array subscripts are reduced into range with
    masks, division is avoided, and integer overflow is well-defined
    (32-bit wrap) in both the interpreter and the machine.  The result is
    deterministic per seed.

    All randomness flows through one explicit :class:`random.Random`
    instance — either a private one seeded with ``seed`` or a caller
    supplied ``rng`` — never the module-global ``random`` state, so
    output is reproducible under pytest-xdist workers and the
    ``repro-fuzz`` CLI regardless of what else draws random numbers.
    """

    INT_OPS = ["+", "-", "*", "&", "|", "^"]
    CMP_OPS = ["<", ">", "<=", ">=", "==", "!="]

    def __init__(
        self,
        seed: int,
        max_stmts: int = 10,
        max_depth: int = 2,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.rng = rng if rng is not None else random.Random(seed)
        self.max_stmts = max_stmts
        self.max_depth = max_depth
        self.arrays = ["ga", "gb"]
        self.scalars = ["gs", "gt"]
        self.locals = ["x", "y", "z"]
        self.array_size = 32

    # -- expressions -------------------------------------------------------

    def _int_atom(self, depth: int, idx_vars: list[str]) -> str:
        roll = self.rng.random()
        if roll < 0.3:
            return str(self.rng.randint(-9, 9))
        if roll < 0.5 and idx_vars:
            return self.rng.choice(idx_vars)
        if roll < 0.7:
            return self.rng.choice(self.scalars + self.locals)
        arr = self.rng.choice(self.arrays)
        return f"{arr}[({self._int_expr(depth + 1, idx_vars)}) & {self.array_size - 1}]"

    def _int_expr(self, depth: int, idx_vars: list[str]) -> str:
        if depth >= self.max_depth:
            return self._int_atom(depth, idx_vars)
        a = self._int_atom(depth, idx_vars)
        b = self._int_atom(depth, idx_vars)
        op = self.rng.choice(self.INT_OPS)
        return f"({a} {op} {b})"

    def _cond(self, idx_vars: list[str]) -> str:
        a = self._int_atom(1, idx_vars)
        b = self._int_atom(1, idx_vars)
        return f"{a} {self.rng.choice(self.CMP_OPS)} {b}"

    # -- statements ------------------------------------------------------------

    def _stmt(self, depth: int, idx_vars: list[str]) -> list[str]:
        roll = self.rng.random()
        pad = "    " * (depth + 1)
        if roll < 0.35:
            target = self.rng.choice(self.scalars + self.locals)
            return [f"{pad}{target} = {self._int_expr(0, idx_vars)};"]
        if roll < 0.6:
            arr = self.rng.choice(self.arrays)
            sub = f"({self._int_expr(1, idx_vars)}) & {self.array_size - 1}"
            return [f"{pad}{arr}[{sub}] = {self._int_expr(0, idx_vars)};"]
        if roll < 0.8 and depth < self.max_depth:
            body = self._stmt(depth + 1, idx_vars)
            out = [f"{pad}if ({self._cond(idx_vars)}) {{"]
            out.extend(body)
            out.append(f"{pad}}}")
            if self.rng.random() < 0.5:
                out.append(f"{pad}else {{")
                out.extend(self._stmt(depth + 1, idx_vars))
                out.append(f"{pad}}}")
            return out
        if depth < self.max_depth:
            var = f"k{depth}"
            trip = self.rng.randint(1, 8)
            inner = idx_vars + [var]
            out = [f"{pad}for ({var} = 0; {var} < {trip}; {var}++) {{"]
            for _ in range(self.rng.randint(1, 3)):
                out.extend(self._stmt(depth + 1, inner))
            out.append(f"{pad}}}")
            return out
        return [f"{pad}{self.rng.choice(self.locals)} = {self._int_atom(0, idx_vars)};"]

    def build(self) -> str:
        body: list[str] = []
        for _ in range(self.rng.randint(3, self.max_stmts)):
            body.extend(self._stmt(0, []))
        checksum = " + ".join(
            [f"ga[{i}]" for i in range(0, self.array_size, 7)]
            + [f"gb[{i}]" for i in range(3, self.array_size, 11)]
            + self.scalars
        )
        return f"""int ga[{self.array_size}];
int gb[{self.array_size}];
int gs;
int gt;

int main() {{
    int x, y, z;
    int k0, k1, k2;
    x = 1; y = 2; z = 3;
    k0 = 0; k1 = 0; k2 = 0;
{chr(10).join(body)}
    return ({checksum}) & 65535;
}}
"""


def random_program(seed: int, rng: Optional[random.Random] = None) -> str:
    """A deterministic random MiniC program (terminating, fault-free)."""
    return RandomProgramBuilder(seed, rng=rng).build()


def random_affine_loop(
    seed: int, size: int = 32, rng: Optional[random.Random] = None
) -> tuple[str, list[int]]:
    """A random single-loop program over two int arrays with affine
    subscripts, plus the Python-computed expected final array ``dst``.

    The subscripts are generated so every access is in bounds; the second
    return value is the expected content of ``dst`` after the loop, used
    by property tests to cross-validate compilation+execution against a
    direct evaluation.
    """
    rng = rng if rng is not None else random.Random(seed)
    shift_src = rng.randint(-2, 2)
    shift_dst = rng.randint(0, 2)
    scale = rng.randint(1, 3)
    add = rng.randint(-5, 5)
    lo = max(0, -shift_src, -shift_dst)
    hi = min(size, size - shift_src, size - shift_dst)
    src = f"""int src[{size}];
int dst[{size}];

int main() {{
    int i;
    for (i = 0; i < {size}; i++) {{
        src[i] = i * {scale} + {add};
        dst[i] = 0;
    }}
    for (i = {lo}; i < {hi}; i++) {{
        dst[i + {shift_dst}] = src[i + {shift_src}] + dst[i + {shift_dst}];
    }}
    return dst[{size // 2}];
}}
"""
    # reference evaluation
    src_vals = [i * scale + add for i in range(size)]
    dst_vals = [0] * size
    for i in range(lo, hi):
        dst_vals[i + shift_dst] = src_vals[i + shift_src] + dst_vals[i + shift_dst]
    return src, dst_vals
