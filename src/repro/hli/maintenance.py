"""HLI maintenance functions (paper Section 3.2.3).

As the back-end optimizes, memory references are deleted (CSE), moved
(loop-invariant code motion), or duplicated (loop unrolling).  These
functions keep the HLI tables consistent with such changes:

* :func:`delete_item`   — CSE removed a reference;
* :func:`generate_item` — the back-end created a reference with no
  front-end counterpart;
* :func:`inherit_item`  — a new reference accesses the same location as
  an existing item (joins its class);
* :func:`move_item_to_parent` — LICM hoisted a reference out of a loop;
* :func:`unroll_region` — the Figure 6 transformation: clone each class
  per unrolled copy, convert intra-unrolled-iteration dependences into
  class merges/aliases, and rewrite LCDD distances.

All functions mutate the :class:`~repro.hli.tables.HLIEntry` in place
and bump ``entry.generation``; build a fresh
:class:`~repro.hli.query.HLIQuery` (or call ``query.refresh()``)
afterwards — a query constructed against an older generation raises
:class:`~repro.hli.query.StaleQueryError` instead of silently answering
from stale indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..obs import metrics as _metrics
from . import faults as _faults
from .tables import (
    AliasEntry,
    DepType,
    EqClass,
    EquivType,
    HLIEntry,
    ItemType,
    LCDDEntry,
    RefModEntry,
    RefModKey,
    RegionEntry,
)


class MaintenanceError(Exception):
    """Raised when an update cannot be applied consistently."""


def _bump(entry: HLIEntry, op: str) -> None:
    """Record that the entry's tables changed (invalidates live queries)."""
    if not _faults.is_active(_faults.STALE_GENERATION):
        entry.generation += 1
    _metrics.inc("hli.maintenance", op)


def next_free_id(entry: HLIEntry) -> int:
    """Smallest ID above every item and class ID in the entry."""
    best = 0
    for le in entry.line_table.entries.values():
        for iid, _ in le.items:
            best = max(best, iid)
    for region in entry.regions.values():
        for c in region.eq_classes:
            best = max(best, c.class_id)
            for iid in c.member_items:
                best = max(best, iid)
    return best + 1


def find_item_class(entry: HLIEntry, item_id: int) -> Optional[tuple[RegionEntry, EqClass]]:
    """Region and class whose ``member_items`` lists ``item_id``."""
    for region in entry.regions.values():
        for c in region.eq_classes:
            if item_id in c.member_items:
                return region, c
    return None


# ---------------------------------------------------------------------------
# delete / generate / inherit / move
# ---------------------------------------------------------------------------


def delete_item(entry: HLIEntry, item_id: int) -> None:
    """Remove an item the back-end deleted (e.g. CSE removed the load).

    Empties cascade: a class left with no members is removed from its
    region and from every alias/LCDD/REF-MOD entry and parent class that
    referenced it.
    """
    if _faults.is_active(_faults.DROP_MAINTENANCE):
        return
    _bump(entry, "delete_item")
    for le in entry.line_table.entries.values():
        le.items = [(iid, ty) for iid, ty in le.items if iid != item_id]
    found = find_item_class(entry, item_id)
    if found is None:
        return
    region, cls = found
    cls.member_items.remove(item_id)
    if not cls.member_items and not cls.member_classes:
        _remove_class(entry, region, cls.class_id)


def _remove_class(entry: HLIEntry, region: RegionEntry, class_id: int) -> None:
    region.eq_classes = [c for c in region.eq_classes if c.class_id != class_id]
    region.alias_entries = [
        a for a in region.alias_entries if class_id not in a.class_ids
    ]
    region.lcdd_entries = [
        d
        for d in region.lcdd_entries
        if d.src_class != class_id and d.dst_class != class_id
    ]
    for m in region.refmod_entries:
        m.ref_classes = [c for c in m.ref_classes if c != class_id]
        m.mod_classes = [c for c in m.mod_classes if c != class_id]
    # cascade into the parent region's class that contained this one
    if region.parent_id is not None:
        parent = entry.regions.get(region.parent_id)
        if parent is not None:
            for c in list(parent.eq_classes):
                if class_id in c.member_classes:
                    c.member_classes.remove(class_id)
                    if not c.member_items and not c.member_classes:
                        _remove_class(entry, parent, c.class_id)


def generate_item(
    entry: HLIEntry,
    line: int,
    item_type: ItemType,
    region_id: int,
    item_id: Optional[int] = None,
) -> int:
    """Create a back-end-originated item in its own fresh class."""
    _bump(entry, "generate_item")
    iid = item_id if item_id is not None else next_free_id(entry)
    entry.line_table.add_item(line, iid, item_type)
    region = entry.regions[region_id]
    cls = EqClass(class_id=next_free_id(entry), member_items=[iid])
    region.eq_classes.append(cls)
    return iid


def inherit_item(entry: HLIEntry, new_item: int, old_item: int, line: int,
                 item_type: ItemType) -> None:
    """Register ``new_item`` as accessing the same location as ``old_item``.

    The new item joins the old item's equivalence class, inheriting every
    alias/LCDD/REF-MOD property at once.
    """
    found = find_item_class(entry, old_item)
    if found is None:
        raise MaintenanceError(f"item {old_item} not found")
    _bump(entry, "inherit_item")
    _, cls = found
    entry.line_table.add_item(line, new_item, item_type)
    cls.member_items.append(new_item)


def move_item_to_parent(entry: HLIEntry, item_id: int) -> None:
    """LICM: re-home an item from a loop region into the parent region.

    The item leaves its class and joins the parent-region class that
    lifted its old class (keeping location facts intact one level up).
    """
    found = find_item_class(entry, item_id)
    if found is None:
        raise MaintenanceError(f"item {item_id} not found")
    region, cls = found
    if region.parent_id is None:
        return
    parent = entry.regions[region.parent_id]
    lifted = None
    for c in parent.eq_classes:
        if cls.class_id in c.member_classes:
            lifted = c
            break
    if lifted is None:
        raise MaintenanceError(
            f"no parent class lifts class {cls.class_id} of region {region.region_id}"
        )
    _bump(entry, "move_item_to_parent")
    cls.member_items.remove(item_id)
    lifted.member_items.append(item_id)
    if not cls.member_items and not cls.member_classes:
        _remove_class(entry, region, cls.class_id)


# ---------------------------------------------------------------------------
# Loop unrolling (Figure 6)
# ---------------------------------------------------------------------------


@dataclass
class UnrollMaintenance:
    """Outcome of one region unrolling: old→new item/class id maps."""

    region_id: int
    factor: int
    #: (old item id, copy index>=1) -> new item id  (copy 0 keeps old ids)
    item_copy: dict[tuple[int, int], int] = field(default_factory=dict)
    #: (old class id, copy index) -> class id of that copy
    class_copy: dict[tuple[int, int], int] = field(default_factory=dict)


def unroll_region(entry: HLIEntry, region_id: int, factor: int) -> UnrollMaintenance:
    """Rewrite one loop region's HLI for unrolling by ``factor``.

    Implements the paper's Figure 6: every class is cloned per copy,
    definite LCDD arcs with distance ``d`` become *merges* between copy
    ``k`` and copy ``k+d`` (the accesses now fall in the same unrolled
    iteration), arcs that cross the new iteration boundary get distance
    ``(k+d) div factor``, and the loop's recorded trip count shrinks.
    """
    if factor < 2:
        raise MaintenanceError("unroll factor must be >= 2")
    _bump(entry, "unroll_region")
    region = entry.regions[region_id]
    result = UnrollMaintenance(region_id=region_id, factor=factor)
    next_id = next_free_id(entry)

    def fresh() -> int:
        nonlocal next_id
        out = next_id
        next_id += 1
        return out

    old_classes = list(region.eq_classes)
    old_lcdd = list(region.lcdd_entries)
    old_alias = list(region.alias_entries)

    # 1. clone items and classes per copy (copy 0 keeps the originals).
    item_lines: dict[int, tuple[int, ItemType]] = {}
    for le in entry.line_table.entries.values():
        for iid, ty in le.items:
            item_lines[iid] = (le.line, ty)
    for c in old_classes:
        result.class_copy[(c.class_id, 0)] = c.class_id
        for k in range(1, factor):
            new_items = []
            for iid in c.member_items:
                nid = fresh()
                result.item_copy[(iid, k)] = nid
                new_items.append(nid)
                line, ty = item_lines.get(iid, (0, ItemType.LOAD))
                entry.line_table.add_item(line, nid, ty)
            clone = EqClass(
                class_id=fresh(),
                equiv_type=c.equiv_type,
                member_items=new_items,
                # clones carry no sub-classes: only innermost (sub-loop-free)
                # regions are unrolled by the back-end pass
                member_classes=[],
                label=f"{c.label}@u{k}" if c.label else "",
            )
            region.eq_classes.append(clone)
            result.class_copy[(c.class_id, k)] = clone.class_id
            # keep outer-region queries precise: the clone joins whatever
            # parent class lifted the original
            if region.parent_id is not None:
                parent = entry.regions.get(region.parent_id)
                if parent is not None:
                    for pc in parent.eq_classes:
                        if c.class_id in pc.member_classes:
                            pc.member_classes.append(clone.class_id)
                            break

    def copy_of(cid: int, k: int) -> int:
        return result.class_copy.get((cid, k), cid)

    # 2. rewrite the LCDD table and derive intra-iteration facts.
    new_lcdd: list[LCDDEntry] = []
    new_alias: list[AliasEntry] = list(old_alias)
    merges: list[tuple[int, int, DepType]] = []
    for d in old_lcdd:
        if d.distance is None:
            # unknown distance: every copy pair may conflict
            for k1 in range(factor):
                for k2 in range(factor):
                    a, b = copy_of(d.src_class, k1), copy_of(d.dst_class, k2)
                    if a != b:
                        new_alias.append(AliasEntry(class_ids=frozenset((a, b))))
            new_lcdd.append(
                LCDDEntry(
                    src_class=copy_of(d.src_class, 0),
                    dst_class=copy_of(d.dst_class, 0),
                    dep_type=DepType.MAYBE,
                    distance=None,
                )
            )
            continue
        for k in range(factor):
            target = k + d.distance
            if target < factor:
                # Falls inside one unrolled iteration: same location now.
                merges.append(
                    (copy_of(d.src_class, k), copy_of(d.dst_class, target), d.dep_type)
                )
            else:
                new_lcdd.append(
                    LCDDEntry(
                        src_class=copy_of(d.src_class, k),
                        dst_class=copy_of(d.dst_class, target % factor),
                        dep_type=d.dep_type,
                        distance=target // factor,
                    )
                )
    # alias entries apply between all copies of the aliased classes
    for a in old_alias:
        ids = sorted(a.class_ids)
        for k in range(1, factor):
            new_alias.append(
                AliasEntry(class_ids=frozenset(copy_of(c, k) for c in ids))
            )
    # definite same-location pairs become alias facts (conservative merge:
    # we alias rather than fuse classes to keep the id maps simple)
    for a, b, dep in merges:
        if a != b:
            new_alias.append(AliasEntry(class_ids=frozenset((a, b))))
    # 3. REF/MOD: a cloned class denotes the same source locations as its
    # original, so every copy inherits membership in the entry's ref/mod
    # sets; call items that were themselves cloned get a mirrored entry.
    cloned_refmod: list[RefModEntry] = []
    for m in region.refmod_entries:
        for cid in list(m.ref_classes):
            for k in range(1, factor):
                copy = copy_of(cid, k)
                if copy != cid and copy not in m.ref_classes:
                    m.ref_classes.append(copy)
        for cid in list(m.mod_classes):
            for k in range(1, factor):
                copy = copy_of(cid, k)
                if copy != cid and copy not in m.mod_classes:
                    m.mod_classes.append(copy)
        if m.key_kind is RefModKey.CALL_ITEM:
            for k in range(1, factor):
                nid = result.item_copy.get((m.key_id, k))
                if nid is not None:
                    cloned_refmod.append(
                        RefModEntry(
                            key_kind=RefModKey.CALL_ITEM,
                            key_id=nid,
                            ref_all=m.ref_all,
                            mod_all=m.mod_all,
                            ref_classes=list(m.ref_classes),
                            mod_classes=list(m.mod_classes),
                        )
                    )
    region.refmod_entries.extend(cloned_refmod)
    region.lcdd_entries = new_lcdd
    region.alias_entries = _dedup_alias(new_alias)
    if region.loop_trip > 0:
        region.loop_trip = region.loop_trip // factor
    region.loop_step *= factor
    return result


def _dedup_alias(entries: list[AliasEntry]) -> list[AliasEntry]:
    seen: set[frozenset[int]] = set()
    out: list[AliasEntry] = []
    for e in entries:
        if e.class_ids not in seen and len(e.class_ids) > 1:
            seen.add(e.class_ids)
            out.append(e)
    return out
