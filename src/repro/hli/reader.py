"""HLI file I/O: save/load the binary format, load-on-demand per unit.

The paper's back-end reads the HLI "on demand as GCC compiles a program
function by function" (Section 3.2.1).  :class:`HLIFileReader` mirrors
that: it indexes entry offsets up front and decodes one unit's entry only
when asked, so a back-end never holds the whole HLI in memory.
"""

from __future__ import annotations

import io
import os
import struct

from .binio import MAGIC, HLIFormatError, _Reader, _decode_entry, encode_hli
from .tables import HLIEntry, HLIFile


def save_hli(hli: HLIFile, path: str | os.PathLike) -> int:
    """Write the binary HLI file; returns the byte count."""
    data = encode_hli(hli)
    with open(path, "wb") as f:
        f.write(data)
    return len(data)


def load_hli(path: str | os.PathLike) -> HLIFile:
    """Read a complete binary HLI file."""
    with open(path, "rb") as f:
        data = f.read()
    from .binio import decode_hli

    return decode_hli(data)


class HLIFileReader:
    """Load-on-demand reader over one binary HLI file."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        r = _Reader(data)
        if r.take(4) != MAGIC:
            raise HLIFormatError("bad magic")
        self.source_filename = r.string()
        n_entries = r.u16()
        #: unit name -> byte offset of its entry
        self._offsets: dict[str, int] = {}
        self._cache: dict[str, HLIEntry] = {}
        for _ in range(n_entries):
            start = r.pos
            name = r.string()
            self._offsets[name] = start
            # Skip the remainder of the entry by decoding it cheaply once;
            # positions are what we keep, entries are dropped.
            r.pos = start
            _decode_entry(r)

    @classmethod
    def open(cls, path: str | os.PathLike) -> "HLIFileReader":
        with open(path, "rb") as f:
            return cls(f.read())

    def unit_names(self) -> list[str]:
        return list(self._offsets)

    def entry(self, unit_name: str) -> HLIEntry:
        """Decode (and cache) one unit's HLI entry on demand."""
        cached = self._cache.get(unit_name)
        if cached is not None:
            return cached
        offset = self._offsets.get(unit_name)
        if offset is None:
            raise KeyError(unit_name)
        r = _Reader(self.data)
        r.pos = offset
        entry = _decode_entry(r)
        self._cache[unit_name] = entry
        return entry
