"""HLI size accounting — the measurements behind the paper's Table 1."""

from __future__ import annotations

from dataclasses import dataclass

from ..frontend.source import SourceFile
from .binio import encode_hli
from .tables import HLIFile


@dataclass(frozen=True)
class SizeReport:
    """HLI size statistics for one program."""

    code_lines: int
    hli_bytes: int

    @property
    def hli_kb(self) -> float:
        return self.hli_bytes / 1024.0

    @property
    def bytes_per_line(self) -> float:
        """The paper's "HLI per line (bytes)" column."""
        return self.hli_bytes / self.code_lines if self.code_lines else 0.0


def hli_size_bytes(hli: HLIFile) -> int:
    """Size of the binary encoding, in bytes."""
    return len(encode_hli(hli))


def size_report(hli: HLIFile, source: str) -> SizeReport:
    """Table-1 row for one program: code lines, HLI bytes, bytes/line."""
    sf = SourceFile(source)
    return SizeReport(code_lines=sf.count_code_lines(), hli_bytes=hli_size_bytes(hli))
