"""Binary HLI serialization.

A compact struct-packed encoding of the HLI file — this is what the
paper's Table 1 measures ("HLI size (KB)").  The format is deliberately
self-contained and compiler-independent: only IDs, types, line numbers
and table payloads are stored; no symbol names, types, or AST references
survive (debug labels are dropped).

Layout (all little-endian):

* magic ``HLI1``, source filename, entry count;
* per entry: unit name, root region id, line table, region table;
* per region: header (id, type, parent, line span, loop metadata),
  sub-region ids, then the four sub-tables.
"""

from __future__ import annotations

import io
import struct

from .tables import (
    AliasEntry,
    DepType,
    EqClass,
    EquivType,
    HLIEntry,
    HLIFile,
    ItemType,
    LCDDEntry,
    LineEntry,
    LineTable,
    RefModEntry,
    RefModKey,
    RegionEntry,
    RegionType,
)

MAGIC = b"HLI1"
#: Magic for a single serialized :class:`HLIEntry` (one function's HLI).
ENTRY_MAGIC = b"HLE1"


class HLIFormatError(Exception):
    """Raised on malformed binary HLI input."""


# -- primitive helpers -------------------------------------------------------


def _w_str(out: io.BytesIO, s: str) -> None:
    data = s.encode("utf-8")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _w_u8(out: io.BytesIO, v: int) -> None:
    out.write(struct.pack("<B", v))


def _w_u16(out: io.BytesIO, v: int) -> None:
    out.write(struct.pack("<H", v))


def _w_u32(out: io.BytesIO, v: int) -> None:
    out.write(struct.pack("<I", v))


def _w_i32(out: io.BytesIO, v: int) -> None:
    out.write(struct.pack("<i", v))


def _w_ids(out: io.BytesIO, ids: list[int]) -> None:
    _w_u16(out, len(ids))
    for i in ids:
        _w_u32(out, i)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise HLIFormatError("truncated HLI data")
        out = self.data[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return struct.unpack("<B", self.take(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.take(4))[0]

    def i32(self) -> int:
        return struct.unpack("<i", self.take(4))[0]

    def string(self) -> str:
        n = self.u16()
        return self.take(n).decode("utf-8")

    def ids(self) -> list[int]:
        n = self.u16()
        return [self.u32() for _ in range(n)]


# -- encoding -------------------------------------------------------------------


def encode_hli(hli: HLIFile) -> bytes:
    """Serialize a complete HLI file to bytes."""
    out = io.BytesIO()
    out.write(MAGIC)
    _w_str(out, hli.source_filename)
    _w_u16(out, len(hli.entries))
    for entry in hli.entries.values():
        _encode_entry(out, entry)
    return out.getvalue()


def _encode_entry(out: io.BytesIO, entry: HLIEntry) -> None:
    _w_str(out, entry.unit_name)
    _w_u32(out, entry.root_region_id)
    # line table
    lines = sorted(entry.line_table.entries)
    _w_u32(out, len(lines))
    for line in lines:
        le = entry.line_table.entries[line]
        _w_u32(out, line)
        _w_u16(out, len(le.items))
        for item_id, ty in le.items:
            _w_u32(out, item_id)
            _w_u8(out, ty.value)
    # region table
    _w_u16(out, len(entry.regions))
    for rid in sorted(entry.regions):
        _encode_region(out, entry.regions[rid])


def _encode_region(out: io.BytesIO, r: RegionEntry) -> None:
    _w_u32(out, r.region_id)
    _w_u8(out, r.region_type.value)
    _w_u32(out, r.parent_id if r.parent_id is not None else 0)
    _w_u32(out, r.line_start)
    _w_u32(out, r.line_end)
    _w_i32(out, r.loop_step)
    _w_i32(out, r.loop_trip)
    _w_ids(out, r.sub_region_ids)
    # equivalent access table
    _w_u16(out, len(r.eq_classes))
    for c in r.eq_classes:
        _w_u32(out, c.class_id)
        _w_u8(out, c.equiv_type.value)
        _w_ids(out, c.member_items)
        _w_ids(out, c.member_classes)
    # alias table
    _w_u16(out, len(r.alias_entries))
    for a in r.alias_entries:
        _w_ids(out, sorted(a.class_ids))
    # LCDD table
    _w_u16(out, len(r.lcdd_entries))
    for d in r.lcdd_entries:
        _w_u32(out, d.src_class)
        _w_u32(out, d.dst_class)
        _w_u8(out, d.dep_type.value)
        _w_i32(out, d.distance if d.distance is not None else -1)
    # call REF/MOD table
    _w_u16(out, len(r.refmod_entries))
    for m in r.refmod_entries:
        _w_u8(out, m.key_kind.value)
        _w_u32(out, m.key_id)
        _w_u8(out, (1 if m.ref_all else 0) | (2 if m.mod_all else 0))
        _w_ids(out, m.ref_classes)
        _w_ids(out, m.mod_classes)


def encode_entry(entry: HLIEntry) -> bytes:
    """Serialize one function's HLI entry on its own.

    The per-function incremental cache stores each unit's HLI
    independently, so one changed function does not force re-serializing
    (or re-reading) the whole file.  The payload is exactly the
    entry-level format used inside :func:`encode_hli`, framed by its own
    magic.
    """
    out = io.BytesIO()
    out.write(ENTRY_MAGIC)
    _encode_entry(out, entry)
    return out.getvalue()


# -- decoding ---------------------------------------------------------------------


def decode_entry(data: bytes) -> HLIEntry:
    """Parse bytes produced by :func:`encode_entry`."""
    r = _Reader(data)
    if r.take(4) != ENTRY_MAGIC:
        raise HLIFormatError("bad entry magic")
    entry = _decode_entry(r)
    if r.pos != len(data):
        raise HLIFormatError("trailing bytes after HLI entry")
    return entry


def decode_hli(data: bytes) -> HLIFile:
    """Parse bytes produced by :func:`encode_hli`."""
    r = _Reader(data)
    if r.take(4) != MAGIC:
        raise HLIFormatError("bad magic")
    hli = HLIFile(source_filename=r.string())
    n_entries = r.u16()
    for _ in range(n_entries):
        entry = _decode_entry(r)
        hli.add(entry)
    return hli


def _decode_entry(r: _Reader) -> HLIEntry:
    entry = HLIEntry(unit_name=r.string())
    entry.root_region_id = r.u32()
    n_lines = r.u32()
    lt = LineTable()
    for _ in range(n_lines):
        line = r.u32()
        n_items = r.u16()
        le = LineEntry(line=line)
        for _ in range(n_items):
            item_id = r.u32()
            ty = ItemType(r.u8())
            le.items.append((item_id, ty))
        lt.entries[line] = le
    entry.line_table = lt
    n_regions = r.u16()
    for _ in range(n_regions):
        region = _decode_region(r)
        entry.regions[region.region_id] = region
    return entry


def _decode_region(r: _Reader) -> RegionEntry:
    region_id = r.u32()
    region_type = RegionType(r.u8())
    parent = r.u32()
    line_start = r.u32()
    line_end = r.u32()
    loop_step = r.i32()
    loop_trip = r.i32()
    subs = r.ids()
    region = RegionEntry(
        region_id=region_id,
        region_type=region_type,
        parent_id=parent if parent != 0 else None,
        line_start=line_start,
        line_end=line_end,
        sub_region_ids=subs,
        loop_step=loop_step,
        loop_trip=loop_trip,
    )
    n_classes = r.u16()
    for _ in range(n_classes):
        cid = r.u32()
        equiv = EquivType(r.u8())
        member_items = r.ids()
        member_classes = r.ids()
        region.eq_classes.append(
            EqClass(
                class_id=cid,
                equiv_type=equiv,
                member_items=member_items,
                member_classes=member_classes,
            )
        )
    n_alias = r.u16()
    for _ in range(n_alias):
        region.alias_entries.append(AliasEntry(class_ids=frozenset(r.ids())))
    n_lcdd = r.u16()
    for _ in range(n_lcdd):
        src = r.u32()
        dst = r.u32()
        dep = DepType(r.u8())
        dist = r.i32()
        region.lcdd_entries.append(
            LCDDEntry(
                src_class=src,
                dst_class=dst,
                dep_type=dep,
                distance=dist if dist >= 0 else None,
            )
        )
    n_refmod = r.u16()
    for _ in range(n_refmod):
        kind = RefModKey(r.u8())
        key_id = r.u32()
        flags = r.u8()
        ref_classes = r.ids()
        mod_classes = r.ids()
        region.refmod_entries.append(
            RefModEntry(
                key_kind=kind,
                key_id=key_id,
                ref_classes=ref_classes,
                mod_classes=mod_classes,
                ref_all=bool(flags & 1),
                mod_all=bool(flags & 2),
            )
        )
    return region
