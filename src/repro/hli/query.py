"""HLI query functions — the back-end's only access path to the HLI.

The paper (Section 3.2.2) specifies that "the stored HLI can be retrieved
only via a set of query functions" with five basic queries.  This module
implements them over a loaded :class:`~repro.hli.tables.HLIEntry`:

* :meth:`HLIQuery.get_equiv_acc`  — may/must two items access the same
  location within one iteration? (paper ``HLI_GetEquivAcc``, Figure 5)
* :meth:`HLIQuery.get_alias`      — alias-table-only variant;
* :meth:`HLIQuery.get_lcdd`       — loop-carried dependences between two
  items with respect to a loop region;
* :meth:`HLIQuery.get_call_acc`   — REF/MOD effect of a call item on a
  memory item (paper ``HLI_GetCallAcc``, Figure 4);
* :meth:`HLIQuery.get_region_info` — structural hints (region id, type,
  nesting) for scheduling heuristics.

Queries answer ``UNKNOWN`` for items the HLI does not cover (the paper's
"unknown dependence types"); the back-end must then fall back to its own
conservative analysis.

A query object snapshots ``entry.generation`` at construction.  Once a
maintenance function mutates the entry, every query method raises
:class:`StaleQueryError` until :meth:`HLIQuery.refresh` (or a fresh
``HLIQuery``) rebuilds the indices — stale indices used to silently
return wrong answers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..obs import metrics as _metrics
from . import faults as _faults
from .tables import (
    DepType,
    EquivType,
    HLIEntry,
    LCDDEntry,
    RefModEntry,
    RefModKey,
    RegionEntry,
    RegionType,
)


class StaleQueryError(RuntimeError):
    """A query was used after maintenance mutated its underlying entry.

    The indices built at construction time no longer reflect the tables;
    call :meth:`HLIQuery.refresh` or build a new :class:`HLIQuery`.
    """


class EquivAcc(enum.Enum):
    """Result of an equivalent-access query."""

    NONE = "none"  # provably distinct locations (within an iteration)
    DEFINITE = "definite"  # provably the same location
    MAYBE = "maybe"  # may overlap
    UNKNOWN = "unknown"  # item not covered by HLI


class CallAcc(enum.Enum):
    """Result of a call REF/MOD query (paper HLI_CALL_*)."""

    NONE = "none"
    REF = "ref"
    MOD = "mod"
    REFMOD = "refmod"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class RegionInfo:
    """Structural information about the region holding an item."""

    region_id: int
    region_type: RegionType
    parent_id: Optional[int]
    depth: int
    loop_step: int
    loop_trip: int


class HLIQuery:
    """Indexed, read-only view over one unit's HLI entry."""

    def __init__(self, entry: HLIEntry) -> None:
        self.entry = entry
        self.refresh()

    # -- staleness ------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Entry generation the current indices were built against."""
        return self._generation

    @property
    def is_stale(self) -> bool:
        return self._generation != self.entry.generation

    def _check_fresh(self) -> None:
        if self._generation != self.entry.generation:
            raise StaleQueryError(
                f"HLIQuery for unit '{self.entry.unit_name}' was built at "
                f"generation {self._generation} but the entry is now at "
                f"generation {self.entry.generation}; call refresh() or "
                "build a new HLIQuery after HLI maintenance"
            )

    def refresh(self) -> "HLIQuery":
        """Rebuild the indices against the entry's current generation."""
        self._generation = self.entry.generation
        #: item id -> region id whose class table lists it
        self._item_home: dict[int, int] = {}
        #: item id -> class id in its home region
        self._item_class: dict[int, int] = {}
        #: class id -> region id that defines it
        self._class_region: dict[int, int] = {}
        #: class id -> class id of the parent-region class containing it
        self._class_up: dict[int, int] = {}
        #: call item id -> region id holding its CALL_ITEM refmod entry
        self._call_region: dict[int, int] = {}
        #: region id -> depth (root = 0)
        self._depth: dict[int, int] = {}
        self._index()
        return self

    # -- index construction ---------------------------------------------------

    def _index(self) -> None:
        for region in self.entry.regions.values():
            for cls in region.eq_classes:
                self._class_region[cls.class_id] = region.region_id
                for iid in cls.member_items:
                    self._item_home[iid] = region.region_id
                    self._item_class[iid] = cls.class_id
                for sub_cls in cls.member_classes:
                    self._class_up[sub_cls] = cls.class_id
            for rm in region.refmod_entries:
                if rm.key_kind is RefModKey.CALL_ITEM:
                    self._call_region[rm.key_id] = region.region_id
        for region in self.entry.regions.values():
            d = 0
            r: Optional[RegionEntry] = region
            while r is not None and r.parent_id is not None:
                d += 1
                r = self.entry.regions.get(r.parent_id)
            self._depth[region.region_id] = d

    # -- region navigation -------------------------------------------------------

    def _ancestors(self, region_id: int) -> list[int]:
        out = [region_id]
        r = self.entry.regions.get(region_id)
        while r is not None and r.parent_id is not None:
            out.append(r.parent_id)
            r = self.entry.regions.get(r.parent_id)
        return out

    def common_region(self, item_a: int, item_b: int) -> Optional[int]:
        """Innermost region enclosing the homes of both items."""
        self._check_fresh()
        home_a = self._item_home.get(item_a)
        home_b = self._item_home.get(item_b)
        if home_a is None or home_b is None:
            return None
        anc_b = set(self._ancestors(home_b))
        for rid in self._ancestors(home_a):
            if rid in anc_b:
                return rid
        return None

    def class_at(self, item_id: int, region_id: int) -> Optional[int]:
        """The class representing ``item_id`` at ``region_id`` (an ancestor
        of the item's home region), or None."""
        self._check_fresh()
        cls = self._item_class.get(item_id)
        while cls is not None:
            if self._class_region.get(cls) == region_id:
                return cls
            cls = self._class_up.get(cls)
        return None

    def item_home(self, item_id: int) -> Optional[int]:
        self._check_fresh()
        return self._item_home.get(item_id)

    # -- query 1: equivalent access (Figure 5) ------------------------------------

    def get_equiv_acc(self, item_a: int, item_b: int) -> EquivAcc:
        """May/must items ``a`` and ``b`` access the same memory location
        within a single iteration of their innermost common region?"""
        result = self._get_equiv_acc(item_a, item_b)
        if result in (EquivAcc.MAYBE, EquivAcc.DEFINITE) and _faults.is_active(
            _faults.FLIP_VERDICT
        ):
            result = EquivAcc.NONE
        _metrics.inc("hli.query.get_equiv_acc", result.value)
        return result

    def _get_equiv_acc(self, item_a: int, item_b: int) -> EquivAcc:
        self._check_fresh()
        rid = self.common_region(item_a, item_b)
        if rid is None:
            return EquivAcc.UNKNOWN
        ca = self.class_at(item_a, rid)
        cb = self.class_at(item_b, rid)
        if ca is None or cb is None:
            return EquivAcc.UNKNOWN
        region = self.entry.regions[rid]
        if ca == cb:
            cls = region.class_by_id(ca)
            if cls is None:
                return EquivAcc.UNKNOWN
            return (
                EquivAcc.DEFINITE
                if cls.equiv_type is EquivType.DEFINITE
                else EquivAcc.MAYBE
            )
        for alias in region.alias_entries:
            if ca in alias.class_ids and cb in alias.class_ids:
                return EquivAcc.MAYBE
        return EquivAcc.NONE

    # -- query 2: alias-only ---------------------------------------------------------

    def get_alias(self, item_a: int, item_b: int) -> EquivAcc:
        """Alias-table-only relation between the items' classes."""
        result = self._get_alias(item_a, item_b)
        _metrics.inc("hli.query.get_alias", result.value)
        return result

    def _get_alias(self, item_a: int, item_b: int) -> EquivAcc:
        self._check_fresh()
        rid = self.common_region(item_a, item_b)
        if rid is None:
            return EquivAcc.UNKNOWN
        ca = self.class_at(item_a, rid)
        cb = self.class_at(item_b, rid)
        if ca is None or cb is None:
            return EquivAcc.UNKNOWN
        if ca == cb:
            return EquivAcc.NONE  # same class is not "alias"
        region = self.entry.regions[rid]
        for alias in region.alias_entries:
            if ca in alias.class_ids and cb in alias.class_ids:
                return EquivAcc.MAYBE
        return EquivAcc.NONE

    # -- query 3: loop-carried dependences ----------------------------------------------

    def get_lcdd(
        self, item_a: int, item_b: int, region_id: Optional[int] = None
    ) -> Optional[list[LCDDEntry]]:
        """LCDD arcs between the classes of the two items at a loop region.

        ``region_id`` defaults to the innermost common *loop* region.
        Returns ``None`` if the items are not covered, an empty list if the
        loop carries no dependence between them.
        """
        out = self._get_lcdd(item_a, item_b, region_id)
        _metrics.inc(
            "hli.query.get_lcdd",
            "uncovered" if out is None else ("arcs" if out else "empty"),
        )
        return out

    def _get_lcdd(
        self, item_a: int, item_b: int, region_id: Optional[int] = None
    ) -> Optional[list[LCDDEntry]]:
        self._check_fresh()
        if region_id is None:
            rid = self.common_region(item_a, item_b)
            while rid is not None:
                region = self.entry.regions[rid]
                if region.region_type is RegionType.LOOP:
                    break
                rid = region.parent_id
            region_id = rid
        if region_id is None:
            return []
        ca = self.class_at(item_a, region_id)
        cb = self.class_at(item_b, region_id)
        if ca is None or cb is None:
            return None
        region = self.entry.regions[region_id]
        out = [
            e
            for e in region.lcdd_entries
            if {e.src_class, e.dst_class} == {ca, cb}
            or (ca == cb and e.src_class == ca and e.dst_class == ca)
        ]
        return out

    # -- query 4: call REF/MOD (Figure 4) ------------------------------------------------

    def get_call_acc(self, mem_item: int, call_item: int) -> CallAcc:
        """Effect of ``call_item`` on the location accessed by ``mem_item``."""
        result = self._get_call_acc(mem_item, call_item)
        _metrics.inc("hli.query.get_call_acc", result.value)
        return result

    def _get_call_acc(self, mem_item: int, call_item: int) -> CallAcc:
        self._check_fresh()
        call_region = self._call_region.get(call_item)
        mem_home = self._item_home.get(mem_item)
        if call_region is None or mem_home is None:
            return CallAcc.UNKNOWN
        # Innermost common region of the call and the memory item.
        anc_mem = set(self._ancestors(mem_home))
        call_path = self._ancestors(call_region)
        rid = next((r for r in call_path if r in anc_mem), None)
        if rid is None:
            return CallAcc.UNKNOWN
        region = self.entry.regions[rid]
        mem_class = self.class_at(mem_item, rid)
        if mem_class is None:
            return CallAcc.UNKNOWN
        if rid == call_region:
            entry = self._find_refmod(region, RefModKey.CALL_ITEM, call_item)
        else:
            # The call lives inside the child of `rid` along call_path.
            idx = call_path.index(rid)
            child = call_path[idx - 1]
            entry = self._find_refmod(region, RefModKey.SUBREGION, child)
        if entry is None:
            return CallAcc.UNKNOWN
        ref = entry.ref_all or mem_class in entry.ref_classes
        mod = entry.mod_all or mem_class in entry.mod_classes
        # An aliased class may also be touched: stay conservative.
        if not (ref and mod):
            for alias in region.alias_entries:
                if mem_class in alias.class_ids:
                    others = alias.class_ids - {mem_class}
                    ref = ref or any(c in entry.ref_classes for c in others)
                    mod = mod or any(c in entry.mod_classes for c in others)
        if ref and mod:
            return CallAcc.REFMOD
        if mod:
            return CallAcc.MOD
        if ref:
            return CallAcc.REF
        return CallAcc.NONE

    @staticmethod
    def _find_refmod(
        region: RegionEntry, kind: RefModKey, key_id: int
    ) -> Optional[RefModEntry]:
        for e in region.refmod_entries:
            if e.key_kind is kind and e.key_id == key_id:
                return e
        return None

    # -- query 5: region / structure info ---------------------------------------------------

    def get_region_info(self, item_id: int) -> Optional[RegionInfo]:
        """Structural hints about the region holding ``item_id``."""
        info = self._get_region_info(item_id)
        _metrics.inc(
            "hli.query.get_region_info", "unknown" if info is None else "found"
        )
        return info

    def _get_region_info(self, item_id: int) -> Optional[RegionInfo]:
        self._check_fresh()
        rid = self._item_home.get(item_id)
        if rid is None:
            rid = self._call_region.get(item_id)
        if rid is None:
            return None
        region = self.entry.regions[rid]
        return RegionInfo(
            region_id=rid,
            region_type=region.region_type,
            parent_id=region.parent_id,
            depth=self._depth[rid],
            loop_step=region.loop_step,
            loop_trip=region.loop_trip,
        )
