"""Human-readable HLI dump (the Figure 1 layout, as text).

The text form is for inspection and examples; the binary form
(:mod:`repro.hli.binio`) is the measured interchange format.
"""

from __future__ import annotations

import io

from .tables import HLIEntry, HLIFile, RefModKey, RegionEntry


def format_hli(hli: HLIFile) -> str:
    """Render a whole HLI file as indented text."""
    out = io.StringIO()
    out.write(f"HLI file for {hli.source_filename or '<unknown>'}\n")
    out.write(f"  {len(hli.entries)} HLI entr{'y' if len(hli.entries) == 1 else 'ies'}\n")
    for entry in hli.entries.values():
        out.write(format_entry(entry))
    return out.getvalue()


def format_entry(entry: HLIEntry) -> str:
    """Render one unit's HLI entry."""
    out = io.StringIO()
    out.write(f"\nHLI entry: unit '{entry.unit_name}'\n")
    out.write("  Line table:\n")
    for line in sorted(entry.line_table.entries):
        items = entry.line_table.entries[line].items
        rendered = " ".join(f"({iid},{ty.name.lower()})" for iid, ty in items)
        out.write(f"    line {line:4d}: {rendered}\n")
    out.write("  Region table:\n")
    for rid in sorted(entry.regions):
        out.write(_format_region(entry.regions[rid]))
    return out.getvalue()


def _format_region(r: RegionEntry) -> str:
    out = io.StringIO()
    parent = f" parent={r.parent_id}" if r.parent_id is not None else ""
    loop = ""
    if r.region_type.name == "LOOP":
        trip = r.loop_trip if r.loop_trip >= 0 else "?"
        loop = f" step={r.loop_step} trip={trip}"
    out.write(
        f"    Region {r.region_id} [{r.region_type.name}]{parent} "
        f"lines {r.line_start}..{r.line_end}{loop}\n"
    )
    if r.sub_region_ids:
        out.write(f"      sub-regions: {r.sub_region_ids}\n")
    if r.eq_classes:
        out.write("      equivalent access table:\n")
        for c in r.eq_classes:
            label = f" ; {c.label}" if c.label else ""
            out.write(
                f"        class {c.class_id} [{c.equiv_type.name.lower()}]"
                f" items={c.member_items} subclasses={c.member_classes}{label}\n"
            )
    if r.alias_entries:
        out.write("      alias table:\n")
        for a in r.alias_entries:
            out.write(f"        alias {sorted(a.class_ids)}\n")
    if r.lcdd_entries:
        out.write("      LCDD table:\n")
        for d in r.lcdd_entries:
            dist = d.distance if d.distance is not None else "?"
            out.write(
                f"        {d.src_class} -> {d.dst_class}"
                f" [{d.dep_type.name.lower()}] distance={dist}\n"
            )
    if r.refmod_entries:
        out.write("      call REF/MOD table:\n")
        for m in r.refmod_entries:
            key = "call item" if m.key_kind is RefModKey.CALL_ITEM else "sub-region"
            ref = "ALL" if m.ref_all else m.ref_classes
            mod = "ALL" if m.mod_all else m.mod_classes
            out.write(f"        {key} {m.key_id}: ref={ref} mod={mod}\n")
    return out.getvalue()
