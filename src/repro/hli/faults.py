"""Fault injection for HLI soundness testing (used by ``repro.difftest``).

The differential-fuzz harness needs *known-bad* compilers to measure its
own detection power: if a seeded miscompilation slips through, the
harness is too weak.  This module provides a process-wide registry of
named faults that the HLI maintenance and query layers consult at their
mutation/answer points:

* :data:`DROP_MAINTENANCE` — :func:`~repro.hli.maintenance.delete_item`
  silently does nothing, modelling a back-end pass that deletes a memory
  reference but forgets the Section 3.2.3 maintenance call (the line
  table and class tables keep an item no instruction carries);
* :data:`STALE_GENERATION` — maintenance functions mutate the tables but
  never bump ``HLIEntry.generation``, defeating the staleness protocol:
  live :class:`~repro.hli.query.HLIQuery` objects silently answer from
  stale indices instead of raising ``StaleQueryError``;
* :data:`FLIP_VERDICT` — ``get_equiv_acc`` answers ``NONE`` where the
  tables say MAYBE/DEFINITE, i.e. the HLI claims independence for
  references that may conflict — the classic miscompilation the paper's
  whole design guards against (the scheduler deletes real DDG edges).

Link-time faults (consulted by :mod:`repro.linker` and the
whole-program driver; audited by lint rules HLI009–HLI012):

* :data:`DROP_SUMMARY` — the linker blanks one function's cross-module
  summary after the SCC fixpoint, modelling a lost/truncated summary
  record (under-approximate effects → unsound DDG edge deletion);
* :data:`SWAP_LINK_ENTRIES` — two link-table entries exchange their
  ``defined_in`` units, modelling symbol-resolution corruption;
* :data:`STALE_SUMMARY` — the whole-program driver records one summary
  against an outdated HLI generation, modelling summaries reused after
  the per-unit HLI moved on (the generation protocol's link-time analog).

Faults are activated with the :func:`inject` context manager and are
strictly scoped: the registry is empty outside every ``with`` block, so
production code paths never pay more than one set-membership test, and a
crashed test cannot leave a fault armed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "DROP_MAINTENANCE",
    "STALE_GENERATION",
    "FLIP_VERDICT",
    "DROP_SUMMARY",
    "SWAP_LINK_ENTRIES",
    "STALE_SUMMARY",
    "ALL_FAULTS",
    "LINK_FAULTS",
    "inject",
    "is_active",
    "active_faults",
]

#: ``delete_item`` becomes a no-op (maintenance op dropped).
DROP_MAINTENANCE = "drop-maintenance"
#: maintenance mutates tables without bumping ``entry.generation``.
STALE_GENERATION = "stale-generation"
#: ``get_equiv_acc`` flips MAYBE/DEFINITE verdicts to NONE.
FLIP_VERDICT = "flip-verdict"
#: the linker blanks one cross-module summary after the fixpoint.
DROP_SUMMARY = "drop-summary"
#: two link-table entries swap their defining units.
SWAP_LINK_ENTRIES = "swap-link-entries"
#: one summary is recorded against an outdated HLI generation.
STALE_SUMMARY = "stale-summary"

#: Faults applied at link time (whole-program mode only).
LINK_FAULTS: tuple[str, ...] = (DROP_SUMMARY, SWAP_LINK_ENTRIES, STALE_SUMMARY)

ALL_FAULTS: tuple[str, ...] = (
    DROP_MAINTENANCE,
    STALE_GENERATION,
    FLIP_VERDICT,
) + LINK_FAULTS

_active: set[str] = set()


def is_active(fault: str) -> bool:
    """Is ``fault`` currently armed?  (Hot path: one set lookup.)"""
    return fault in _active


def active_faults() -> frozenset[str]:
    """Snapshot of the currently armed faults."""
    return frozenset(_active)


@contextmanager
def inject(*faults: str) -> Iterator[None]:
    """Arm the named faults for the duration of the ``with`` body.

    Nesting is supported; each scope disarms only the faults it armed,
    so overlapping injections compose and unwind correctly.
    """
    for f in faults:
        if f not in ALL_FAULTS:
            raise ValueError(
                f"unknown fault '{f}' (known: {', '.join(ALL_FAULTS)})"
            )
    added = [f for f in faults if f not in _active]
    _active.update(added)
    try:
        yield
    finally:
        _active.difference_update(added)
