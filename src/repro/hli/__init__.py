"""The High-Level Information (HLI) format (paper Section 2).

* :mod:`~repro.hli.tables`      — the data model (line table + region table);
* :mod:`~repro.hli.binio`       — compact binary serialization (Table 1 sizes);
* :mod:`~repro.hli.writer`      — human-readable dump;
* :mod:`~repro.hli.reader`      — file I/O with per-unit load-on-demand;
* :mod:`~repro.hli.query`       — the back-end query API (Section 3.2.2);
* :mod:`~repro.hli.maintenance` — update API for back-end transformations
  (Section 3.2.3).
"""

from . import faults
from .binio import HLIFormatError, decode_entry, decode_hli, encode_entry, encode_hli
from .query import CallAcc, EquivAcc, HLIQuery, RegionInfo
from .reader import HLIFileReader, load_hli, save_hli
from .sizes import SizeReport, hli_size_bytes, size_report
from .tables import (
    AliasEntry,
    DepType,
    EqClass,
    EquivType,
    HLIEntry,
    HLIFile,
    ItemType,
    LCDDEntry,
    LineEntry,
    LineTable,
    RefModEntry,
    RefModKey,
    RegionEntry,
    RegionType,
)
from .writer import format_entry, format_hli

__all__ = [
    "faults",
    "HLIFormatError",
    "decode_entry",
    "decode_hli",
    "encode_entry",
    "encode_hli",
    "CallAcc",
    "EquivAcc",
    "HLIQuery",
    "RegionInfo",
    "HLIFileReader",
    "load_hli",
    "save_hli",
    "SizeReport",
    "hli_size_bytes",
    "size_report",
    "AliasEntry",
    "DepType",
    "EqClass",
    "EquivType",
    "HLIEntry",
    "HLIFile",
    "ItemType",
    "LCDDEntry",
    "LineEntry",
    "LineTable",
    "RefModEntry",
    "RefModKey",
    "RegionEntry",
    "RegionType",
    "format_entry",
    "format_hli",
]
