"""The High-Level Information (HLI) data model — paper Section 2, Figure 1.

An :class:`HLIFile` contains one :class:`HLIEntry` per program unit
(function).  Each entry has:

* a **line table**: for every source line, the ordered list of
  ``(item ID, access type)`` pairs — the contract that lets the back-end
  map items onto its own memory references by position;
* a **region table**: for every region (the unit itself and each loop),
  four sub-tables — equivalent access classes, alias sets, loop-carried
  data dependences, and function-call REF/MOD effects.

Everything here is plain data: no AST or symbol references survive into
the serialized HLI (names appear only as debug strings), which is what
makes the format compiler-independent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class ItemType(enum.Enum):
    """Access type stored in the line table's item entries."""

    LOAD = 0
    STORE = 1
    CALL = 2


class EquivType(enum.Enum):
    """Equivalent-access class qualifier (Section 2.2.1)."""

    DEFINITE = 0
    MAYBE = 1


class DepType(enum.Enum):
    """Loop-carried dependence qualifier (Section 2.2.3)."""

    DEFINITE = 0
    MAYBE = 1


class RegionType(enum.Enum):
    UNIT = 0
    LOOP = 1


@dataclass
class LineEntry:
    """Items of one source line, in back-end emission order."""

    line: int
    items: list[tuple[int, ItemType]] = field(default_factory=list)


@dataclass
class LineTable:
    """Ordered per-line item lists for one program unit."""

    entries: dict[int, LineEntry] = field(default_factory=dict)

    def add_item(self, line: int, item_id: int, ty: ItemType) -> None:
        entry = self.entries.get(line)
        if entry is None:
            entry = LineEntry(line=line)
            self.entries[line] = entry
        entry.items.append((item_id, ty))

    def items_on_line(self, line: int) -> list[tuple[int, ItemType]]:
        entry = self.entries.get(line)
        return list(entry.items) if entry else []

    def all_items(self) -> Iterator[tuple[int, ItemType]]:
        for line in sorted(self.entries):
            yield from self.entries[line].items

    @property
    def num_items(self) -> int:
        return sum(len(e.items) for e in self.entries.values())


@dataclass
class EqClass:
    """One equivalent access class (Section 2.2.1).

    ``class_id`` lives in the item-ID number space ("each equivalent
    access class has a unique item ID").  ``member_items`` are item IDs
    immediately enclosed by the region; ``member_classes`` are class IDs
    of immediate sub-regions representing the items inside them.
    """

    class_id: int
    equiv_type: EquivType = EquivType.DEFINITE
    member_items: list[int] = field(default_factory=list)
    member_classes: list[int] = field(default_factory=list)
    #: Debug label like ``a[0..9]`` or ``sum`` — not used by queries.
    label: str = ""


@dataclass
class AliasEntry:
    """A set of class IDs that may access overlapping memory (Section 2.2.2)."""

    class_ids: frozenset[int]


@dataclass
class LCDDEntry:
    """A loop-carried dependence arc (Section 2.2.3).

    Direction is normalized '>': ``src_class`` accesses in an earlier
    iteration, ``dst_class`` in a later one, ``distance`` iterations apart
    (``None`` = unknown distance, only with ``dep_type=MAYBE``).
    """

    src_class: int
    dst_class: int
    dep_type: DepType = DepType.MAYBE
    distance: Optional[int] = None


class RefModKey(enum.Enum):
    """What a REF/MOD entry is keyed by (Section 2.2.4)."""

    CALL_ITEM = 0  # a call item immediately enclosed by the region
    SUBREGION = 1  # all calls inside one immediate sub-region


@dataclass
class RefModEntry:
    """Side effects of call(s) on the region's equivalence classes."""

    key_kind: RefModKey
    key_id: int  # call item ID or sub-region ID
    ref_classes: list[int] = field(default_factory=list)
    mod_classes: list[int] = field(default_factory=list)
    #: True when the callee may read/write *anything* (external calls).
    ref_all: bool = False
    mod_all: bool = False


@dataclass
class RegionEntry:
    """One region's header plus its four sub-tables."""

    region_id: int
    region_type: RegionType
    parent_id: Optional[int]
    line_start: int
    line_end: int
    sub_region_ids: list[int] = field(default_factory=list)
    eq_classes: list[EqClass] = field(default_factory=list)
    alias_entries: list[AliasEntry] = field(default_factory=list)
    lcdd_entries: list[LCDDEntry] = field(default_factory=list)
    refmod_entries: list[RefModEntry] = field(default_factory=list)
    #: Loop metadata used by HLI maintenance during unrolling; -1 = unknown.
    loop_step: int = 0
    loop_trip: int = -1

    def class_by_id(self, class_id: int) -> Optional[EqClass]:
        for c in self.eq_classes:
            if c.class_id == class_id:
                return c
        return None


@dataclass
class HLIEntry:
    """HLI for one program unit (function)."""

    unit_name: str
    filename: str = ""
    root_region_id: int = 0
    line_table: LineTable = field(default_factory=LineTable)
    regions: dict[int, RegionEntry] = field(default_factory=dict)
    #: Maintenance generation.  Every mutator in
    #: :mod:`repro.hli.maintenance` bumps it; :class:`~repro.hli.query.HLIQuery`
    #: snapshots it and refuses to answer once the entry has moved on.  The
    #: counter is in-memory state only — it is not part of the serialized
    #: format (a freshly read entry always starts at generation 0).
    generation: int = 0

    # -- navigation helpers (used by queries and maintenance) -------------

    def region(self, region_id: int) -> RegionEntry:
        return self.regions[region_id]

    def root_region(self) -> RegionEntry:
        return self.regions[self.root_region_id]

    def region_of_item(self, item_id: int) -> Optional[RegionEntry]:
        """The region whose eq-class table lists ``item_id`` as a member."""
        for r in self.regions.values():
            for c in r.eq_classes:
                if item_id in c.member_items:
                    return r
        return None

    def iter_regions_postorder(self) -> Iterator[RegionEntry]:
        def rec(rid: int) -> Iterator[RegionEntry]:
            r = self.regions[rid]
            for sub in r.sub_region_ids:
                yield from rec(sub)
            yield r

        yield from rec(self.root_region_id)


@dataclass
class HLIFile:
    """A complete HLI file: one entry per program unit (Figure 1)."""

    source_filename: str = ""
    entries: dict[str, HLIEntry] = field(default_factory=dict)

    def entry(self, unit_name: str) -> HLIEntry:
        return self.entries[unit_name]

    def add(self, entry: HLIEntry) -> None:
        self.entries[entry.unit_name] = entry
