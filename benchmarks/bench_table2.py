"""Table 2 (columns 1-6) — dependence tests in the first scheduling pass.

For every benchmark, builds the scheduler's DDG under the Figure 5
combination and records: total dependence queries, queries per source
line, GCC-yes / HLI-yes / combined-yes percentages, and the reduction in
dependence edges.  This *is* the paper's Figure 5 code path: the
benchmark times DDG construction with both analyzers consulted.
"""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.hli.sizes import size_report
from repro.workloads.suite import BENCHMARKS, float_benchmarks, integer_benchmarks


pytestmark = pytest.mark.bench

def _stats(bench):
    comp = compile_source(bench.source, bench.name, CompileOptions(mode=DDGMode.COMBINED))
    return comp.total_dep_stats(), size_report(comp.hli, bench.source)


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_table2_row(benchmark, bench):
    stats, rep = benchmark(_stats, bench)
    total = max(stats.total_tests, 1)
    benchmark.extra_info.update(
        {
            "total_tests": stats.total_tests,
            "tests_per_line": round(stats.total_tests / rep.code_lines, 2),
            "gcc_yes_pct": round(100 * stats.gcc_yes / total, 1),
            "hli_yes_pct": round(100 * stats.hli_yes / total, 1),
            "combined_yes_pct": round(100 * stats.combined_yes / total, 1),
            "reduction_pct": round(100 * stats.reduction, 1),
            "paper_reduction_pct": bench.paper.reduction_pct,
        }
    )
    # Figure 5 invariant: combined = AND of the two analyzers
    assert stats.combined_yes <= min(stats.gcc_yes, stats.hli_yes)


def test_table2_means(benchmark):
    def compute():
        def mean_reduction(benches):
            vals = [_stats(b)[0].reduction for b in benches]
            return 100 * sum(vals) / len(vals)

        return mean_reduction(integer_benchmarks()), mean_reduction(float_benchmarks())

    int_mean, fp_mean = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "int_mean_reduction_pct": round(int_mean, 1),
            "fp_mean_reduction_pct": round(fp_mean, 1),
            "paper_int_mean_pct": 48,
            "paper_fp_mean_pct": 54,
        }
    )
    # headline shape: both substantial, fp at least as large as int
    assert int_mean > 30
    assert fp_mean > 50
