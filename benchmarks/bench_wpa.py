"""Whole-program linking benchmark: ``python benchmarks/bench_wpa.py``.

For every curated multi-file workload
(:data:`repro.workloads.WHOLE_PROGRAM_WORKLOADS`) plus a band of
generated multi-unit programs, compiles per-file (conservative extern
effects) and whole-program (linked summaries) and writes
``BENCH_wpa.json`` capturing:

* call-vs-memory dependence edges kept in each mode and the deletion
  ratio — the paper's Table-style precision payoff, now cross-module;
* semantic agreement of the two linked images (hard assertion — the
  benchmark refuses to report numbers for an unsound configuration);
* link-step overhead: wall time of per-file vs whole-program
  compilation and the linker phases' share of it;
* **partitioned back end** (``--jobs N --partition balanced``): for a
  band of 8-16-unit generated programs, cold ``jobs=1`` vs cold
  ``jobs=N`` wall time (the ``parallel_speedup`` column), a hard parity
  oracle (alpha-equivalent per-unit RTL and merged image, equal
  DepStats), and a warm partitioned rerun against the shared disk cache
  — every unit must come back as a parent-side cache hit with zero new
  misses, proving partition boundaries do not fragment the cache.

Standalone script (no pytest-benchmark) so CI can run it bare, same as
``bench_pipeline.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from time import perf_counter

from repro.bench.stats import Summary


def _measure(sources, options, whole_program, repeats=1):
    from repro.driver.wpa import compile_whole_program
    from repro.machine.executor import execute

    samples = []
    result = None
    for _ in range(repeats):
        t0 = perf_counter()
        result = compile_whole_program(sources, options, whole_program=whole_program)
        samples.append(perf_counter() - t0)
    run = execute(result.image, collect_trace=False)
    return result, run, min(samples), Summary.from_values(samples)


def bench_workloads(generated_seeds: int = 5, repeats: int = 1) -> dict:
    from repro.driver.compile import CompileOptions
    from repro.difftest.gen import generate_units
    from repro.workloads import WHOLE_PROGRAM_WORKLOADS

    opts = CompileOptions()
    cases = [(wl.name, list(wl.sources())) for wl in WHOLE_PROGRAM_WORKLOADS]
    cases += [
        (f"gen-{seed}", generate_units(seed, n_units=3))
        for seed in range(generated_seeds)
    ]

    rows = []
    for name, sources in cases:
        wp, run_wp, t_wp, sum_wp = _measure(
            sources, opts, whole_program=True, repeats=repeats
        )
        pf, run_pf, t_pf, sum_pf = _measure(
            sources, opts, whole_program=False, repeats=repeats
        )
        assert (run_wp.ret, list(run_wp.output)) == (run_pf.ret, list(run_pf.output)), (
            f"{name}: whole-program image diverges from per-file baseline"
        )
        s_wp, s_pf = wp.total_dep_stats(), pf.total_dep_stats()
        assert s_wp.call_dep <= s_pf.call_dep, f"{name}: monotonicity violated"
        report = wp.lint_report()
        assert not report.diagnostics, f"{name}: whole-program lint not clean"
        rows.append(
            {
                "workload": name,
                "units": len(sources),
                "functions": len(wp.link.summaries),
                "sccs": len(wp.link.summary.sccs),
                "ret": run_wp.ret,
                "call_dep_pf": s_pf.call_dep,
                "call_dep_wp": s_wp.call_dep,
                "edges_deleted": s_pf.call_dep - s_wp.call_dep,
                "call_tests": s_wp.call_tests,
                "pf_seconds": round(t_pf, 6),
                "wp_seconds": round(t_wp, 6),
                "pf_summary": sum_pf.to_dict(),
                "wp_summary": sum_wp.to_dict(),
                "link_overhead_ratio": round(t_wp / t_pf, 3) if t_pf else None,
                "wp_lint_claims": sum(report.claims_checked.values()),
            }
        )

    total_pf = sum(r["call_dep_pf"] for r in rows)
    total_wp = sum(r["call_dep_wp"] for r in rows)
    return {
        "python": platform.python_version(),
        "repeats": repeats,
        "workloads": rows,
        "total_call_dep_pf": total_pf,
        "total_call_dep_wp": total_wp,
        "total_edges_deleted": total_pf - total_wp,
        "deletion_ratio": round((total_pf - total_wp) / total_pf, 4)
        if total_pf
        else None,
        "total_pf_seconds": round(sum(r["pf_seconds"] for r in rows), 6),
        "total_wp_seconds": round(sum(r["wp_seconds"] for r in rows), 6),
    }


def bench_partitioned(
    jobs: int,
    partition: str,
    seeds: int = 4,
    repeats: int = 1,
) -> dict:
    """Cold jobs=1 vs cold jobs=N on 8-16-unit programs, plus parity."""
    import tempfile
    from pathlib import Path

    from repro.difftest.gen import GenConfig, generate_units
    from repro.difftest.incremental import canonical_rtl
    from repro.driver.compile import CompileOptions
    from repro.driver.session import CompilationSession
    from repro.driver.wpa import compile_whole_program

    # same recipe as the registry's multiunit-large profile: seeds from
    # 150_000 land on 8-16 units of ~15 functions each
    config = GenConfig(functions=15, structs=False, prints=False)
    cases = []
    for i in range(seeds):
        seed = 150_000 + i
        n_units = 8 + seed % 9
        cases.append((f"gen-large-{seed}", generate_units(seed, config, n_units)))

    opts = CompileOptions()
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-wpa-") as tmp:
        for name, sources in cases:
            cache_dir = Path(tmp) / name

            serial_samples, serial_res = [], None
            for _ in range(repeats):
                sess = CompilationSession()  # memory-only: every repeat cold
                t0 = perf_counter()
                serial_res = compile_whole_program(sources, opts, session=sess)
                serial_samples.append(perf_counter() - t0)

            par_samples, par_res, par_sess = [], None, None
            for r in range(repeats):
                # last repeat keeps the shared disk cache for the warm rerun
                par_sess = CompilationSession(
                    cache_dir=cache_dir if r == repeats - 1 else None
                )
                t0 = perf_counter()
                par_res = compile_whole_program(
                    sources, opts, session=par_sess,
                    jobs=jobs, partition=partition,
                )
                par_samples.append(perf_counter() - t0)

            parity = (
                list(serial_res.units) == list(par_res.units)
                and all(
                    canonical_rtl(serial_res.units[f].rtl)
                    == canonical_rtl(par_res.units[f].rtl)
                    for f in serial_res.units
                )
                and serial_res.total_dep_stats() == par_res.total_dep_stats()
                and canonical_rtl(serial_res.image) == canonical_rtl(par_res.image)
            )
            assert parity, f"{name}: partitioned output diverges from jobs=1"

            # warm partitioned rerun: a fresh session over the same disk
            # cache must satisfy every unit from the shared store
            # (parent-side hits, no worker spawn, no duplicated decodes)
            warm_sess = CompilationSession(cache_dir=cache_dir)
            t0 = perf_counter()
            compile_whole_program(
                sources, opts, session=warm_sess, jobs=jobs, partition=partition
            )
            warm_seconds = perf_counter() - t0
            warm = warm_sess.stats

            t_serial, t_par = min(serial_samples), min(par_samples)
            plan = par_res.partition_plan
            rows.append(
                {
                    "workload": name,
                    "units": len(sources),
                    "partitions": plan.n_partitions if plan else 1,
                    "partition_skew": round(plan.skew, 4) if plan else 1.0,
                    "cross_edges": plan.cross_edges if plan else 0,
                    "jobs1_seconds": round(t_serial, 6),
                    "jobsN_seconds": round(t_par, 6),
                    "parallel_speedup": round(t_serial / t_par, 4) if t_par else None,
                    "jobs1_summary": Summary.from_values(serial_samples).to_dict(),
                    "jobsN_summary": Summary.from_values(par_samples).to_dict(),
                    "parity_ok": parity,
                    "warm_seconds": round(warm_seconds, 6),
                    "warm_hits": warm.hits_memory + warm.hits_disk,
                    "warm_misses": warm.misses,
                    "warm_fe_decodes": warm.fe_decodes,
                }
            )

    speedups = [r["parallel_speedup"] for r in rows if r["parallel_speedup"]]
    return {
        "jobs": jobs,
        "partition": partition,
        "workloads": rows,
        "parity_ok": all(r["parity_ok"] for r in rows),
        "median_parallel_speedup": Summary.from_values(speedups).median
        if speedups
        else None,
        "warm_all_hits": all(
            r["warm_misses"] == 0 and r["warm_hits"] == r["units"] for r in rows
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_wpa.json", help="output JSON path")
    parser.add_argument(
        "--seeds", type=int, default=5, help="number of generated multi-unit programs"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="time each compile N times; reports keep fastest plus the "
        "full distribution summary (default: 1)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the partitioned back-end section; "
        "1 (default) skips that section",
    )
    parser.add_argument(
        "--partition",
        default="balanced",
        choices=("1to1", "balanced"),
        help="partition mode for the parallel section (default: %(default)s)",
    )
    parser.add_argument(
        "--large-seeds",
        type=int,
        default=4,
        metavar="N",
        help="number of 8-16-unit generated programs for the partitioned "
        "section (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    doc = bench_workloads(generated_seeds=args.seeds, repeats=max(1, args.repeats))
    if args.jobs > 1:
        doc["partitioned"] = bench_partitioned(
            jobs=args.jobs,
            partition=args.partition,
            seeds=args.large_seeds,
            repeats=max(1, args.repeats),
        )
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)

    print(f"{'workload':<12} {'units':>5} {'pf':>5} {'wp':>5} {'deleted':>8}")
    for r in doc["workloads"]:
        print(
            f"{r['workload']:<12} {r['units']:>5} {r['call_dep_pf']:>5} "
            f"{r['call_dep_wp']:>5} {r['edges_deleted']:>8}"
        )
    print(
        f"total: {doc['total_edges_deleted']} of {doc['total_call_dep_pf']} "
        f"call edges deleted ({doc['deletion_ratio']:.1%}), "
        f"wp {doc['total_wp_seconds']:.3f}s vs pf {doc['total_pf_seconds']:.3f}s"
    )
    if "partitioned" in doc:
        part = doc["partitioned"]
        jobs_col = f"jobs={part['jobs']}"
        print(
            f"\n{'workload':<18} {'units':>5} {'parts':>5} {'skew':>6} "
            f"{'jobs=1':>8} {jobs_col:>8} {'speedup':>8} "
            f"{'warm hit/miss':>13}"
        )
        for r in part["workloads"]:
            print(
                f"{r['workload']:<18} {r['units']:>5} {r['partitions']:>5} "
                f"{r['partition_skew']:>6.2f} {r['jobs1_seconds']:>8.3f} "
                f"{r['jobsN_seconds']:>8.3f} {r['parallel_speedup']:>8.2f} "
                f"{r['warm_hits']:>8}/{r['warm_misses']}"
            )
        print(
            f"partitioned ({part['partition']}, jobs={part['jobs']}): "
            f"parity {'OK' if part['parity_ok'] else 'FAILED'}, "
            f"median speedup {part['median_parallel_speedup']:.2f}x, "
            f"warm cross-partition hits "
            f"{'all shared' if part['warm_all_hits'] else 'FRAGMENTED'}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
