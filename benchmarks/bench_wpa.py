"""Whole-program linking benchmark: ``python benchmarks/bench_wpa.py``.

For every curated multi-file workload
(:data:`repro.workloads.WHOLE_PROGRAM_WORKLOADS`) plus a band of
generated multi-unit programs, compiles per-file (conservative extern
effects) and whole-program (linked summaries) and writes
``BENCH_wpa.json`` capturing:

* call-vs-memory dependence edges kept in each mode and the deletion
  ratio — the paper's Table-style precision payoff, now cross-module;
* semantic agreement of the two linked images (hard assertion — the
  benchmark refuses to report numbers for an unsound configuration);
* link-step overhead: wall time of per-file vs whole-program
  compilation and the linker phases' share of it.

Standalone script (no pytest-benchmark) so CI can run it bare, same as
``bench_pipeline.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from time import perf_counter

from repro.bench.stats import Summary


def _measure(sources, options, whole_program, repeats=1):
    from repro.driver.wpa import compile_whole_program
    from repro.machine.executor import execute

    samples = []
    result = None
    for _ in range(repeats):
        t0 = perf_counter()
        result = compile_whole_program(sources, options, whole_program=whole_program)
        samples.append(perf_counter() - t0)
    run = execute(result.image, collect_trace=False)
    return result, run, min(samples), Summary.from_values(samples)


def bench_workloads(generated_seeds: int = 5, repeats: int = 1) -> dict:
    from repro.driver.compile import CompileOptions
    from repro.difftest.gen import generate_units
    from repro.workloads import WHOLE_PROGRAM_WORKLOADS

    opts = CompileOptions()
    cases = [(wl.name, list(wl.sources())) for wl in WHOLE_PROGRAM_WORKLOADS]
    cases += [
        (f"gen-{seed}", generate_units(seed, n_units=3))
        for seed in range(generated_seeds)
    ]

    rows = []
    for name, sources in cases:
        wp, run_wp, t_wp, sum_wp = _measure(
            sources, opts, whole_program=True, repeats=repeats
        )
        pf, run_pf, t_pf, sum_pf = _measure(
            sources, opts, whole_program=False, repeats=repeats
        )
        assert (run_wp.ret, list(run_wp.output)) == (run_pf.ret, list(run_pf.output)), (
            f"{name}: whole-program image diverges from per-file baseline"
        )
        s_wp, s_pf = wp.total_dep_stats(), pf.total_dep_stats()
        assert s_wp.call_dep <= s_pf.call_dep, f"{name}: monotonicity violated"
        report = wp.lint_report()
        assert not report.diagnostics, f"{name}: whole-program lint not clean"
        rows.append(
            {
                "workload": name,
                "units": len(sources),
                "functions": len(wp.link.summaries),
                "sccs": len(wp.link.summary.sccs),
                "ret": run_wp.ret,
                "call_dep_pf": s_pf.call_dep,
                "call_dep_wp": s_wp.call_dep,
                "edges_deleted": s_pf.call_dep - s_wp.call_dep,
                "call_tests": s_wp.call_tests,
                "pf_seconds": round(t_pf, 6),
                "wp_seconds": round(t_wp, 6),
                "pf_summary": sum_pf.to_dict(),
                "wp_summary": sum_wp.to_dict(),
                "link_overhead_ratio": round(t_wp / t_pf, 3) if t_pf else None,
                "wp_lint_claims": sum(report.claims_checked.values()),
            }
        )

    total_pf = sum(r["call_dep_pf"] for r in rows)
    total_wp = sum(r["call_dep_wp"] for r in rows)
    return {
        "python": platform.python_version(),
        "repeats": repeats,
        "workloads": rows,
        "total_call_dep_pf": total_pf,
        "total_call_dep_wp": total_wp,
        "total_edges_deleted": total_pf - total_wp,
        "deletion_ratio": round((total_pf - total_wp) / total_pf, 4)
        if total_pf
        else None,
        "total_pf_seconds": round(sum(r["pf_seconds"] for r in rows), 6),
        "total_wp_seconds": round(sum(r["wp_seconds"] for r in rows), 6),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_wpa.json", help="output JSON path")
    parser.add_argument(
        "--seeds", type=int, default=5, help="number of generated multi-unit programs"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="time each compile N times; reports keep fastest plus the "
        "full distribution summary (default: 1)",
    )
    args = parser.parse_args(argv)

    doc = bench_workloads(generated_seeds=args.seeds, repeats=max(1, args.repeats))
    with open(args.out, "w") as fh:
        json.dump(doc, fh, indent=2)

    print(f"{'workload':<12} {'units':>5} {'pf':>5} {'wp':>5} {'deleted':>8}")
    for r in doc["workloads"]:
        print(
            f"{r['workload']:<12} {r['units']:>5} {r['call_dep_pf']:>5} "
            f"{r['call_dep_wp']:>5} {r['edges_deleted']:>8}"
        )
    print(
        f"total: {doc['total_edges_deleted']} of {doc['total_call_dep_pf']} "
        f"call edges deleted ({doc['deletion_ratio']:.1%}), "
        f"wp {doc['total_wp_seconds']:.3f}s vs pf {doc['total_pf_seconds']:.3f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
