"""Figure 4 ablation — call REF/MOD information aiding CSE.

The paper's Figure 4 shows GCC's CSE purging every memory-derived table
entry at each call site unless HLI call REF/MOD information selectively
invalidates.  This benchmark compiles a call-heavy kernel twice (CSE
without HLI, CSE with HLI) and reports how many table entries survive
calls and how many redundant loads are removed.
"""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.backend.cse import run_cse
from repro.hli.query import HLIQuery

pytestmark = pytest.mark.bench

#: A kernel where a cheap logging call sits between reuses of array data.
CALL_HEAVY = """int table_a[64];
int table_b[64];
int log_count;

void note() { log_count = log_count + 1; }

int lookup(int base, int idx) {
    int x, y;
    x = table_a[base + idx];
    note();
    y = table_a[base + idx];
    note();
    return x + y + table_b[idx];
}

int main() {
    int i, total;
    total = 0;
    for (i = 0; i < 48; i++) {
        total = total + lookup(8, i % 16);
    }
    return total;
}
"""


def _run(use_hli: bool):
    comp = compile_source(CALL_HEAVY, "fig4.c", CompileOptions(schedule=False))
    totals = None
    from repro.backend.cse import CSEStats

    totals = CSEStats()
    for name, fn in comp.rtl.functions.items():
        entry = comp.hli.entries.get(name)
        query = HLIQuery(entry) if (use_hli and entry is not None) else None
        totals.merge(run_cse(fn, use_hli=use_hli, query=query, entry=entry))
    return comp, totals


def test_fig4_cse_without_hli(benchmark):
    _, stats = benchmark.pedantic(_run, args=(False,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "loads_eliminated": stats.loads_eliminated,
            "entries_kept_across_calls": stats.entries_kept_across_calls,
            "entries_purged_at_calls": stats.entries_purged_at_calls,
        }
    )
    # without interprocedural info every entry dies at the call
    assert stats.entries_kept_across_calls == 0


def test_fig4_cse_with_hli(benchmark):
    _, stats = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "loads_eliminated": stats.loads_eliminated,
            "entries_kept_across_calls": stats.entries_kept_across_calls,
            "entries_purged_at_calls": stats.entries_purged_at_calls,
        }
    )
    # note() only writes log_count: the table_a entry survives and the
    # repeated load is eliminated
    assert stats.entries_kept_across_calls > 0
    assert stats.loads_eliminated >= 1


def test_fig4_semantics_identical(benchmark):
    from repro.machine.executor import execute

    def both():
        out = []
        for use_hli in (False, True):
            comp, _ = _run(use_hli)
            res = execute(comp.rtl, collect_trace=False)
            out.append(res.ret)
        return out

    rets = benchmark.pedantic(both, rounds=1, iterations=1)
    assert rets[0] == rets[1]
