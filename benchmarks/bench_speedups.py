"""Table 2 (columns 7-8) — execution-time speedups on both machine models.

Each benchmark is compiled twice (GCC-only dependence info vs the
Figure 5 combination), executed, and timed on the R4600-like in-order
model and the R10000-like 4-issue out-of-order model.  The paper's
qualitative claims asserted here:

* HLI scheduling never loses meaningfully (>2%) on either machine;
* the R10000 benefits at least as much as the R4600 in the mean
  (its load/store queue is sensitive to compile-time load/store order);
* results (return values and output) are bit-identical across schedules.

A heavy benchmark: the full sweep executes every program four times.
"""

from __future__ import annotations

import pytest

from repro.driver.timing import time_benchmark
from repro.workloads.suite import BENCHMARKS

pytestmark = pytest.mark.bench


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_speedup_row(benchmark, bench):
    t = benchmark.pedantic(time_benchmark, args=(bench,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "speedup_r4600": round(t.speedup_r4600, 3),
            "speedup_r10000": round(t.speedup_r10000, 3),
            "paper_r4600": bench.paper.speedup_r4600,
            "paper_r10000": bench.paper.speedup_r10000,
            "dynamic_insns": t.dynamic_insns,
        }
    )
    assert t.results_match, "HLI schedule changed program behaviour"
    assert t.speedup_r4600 > 0.97, "HLI schedule must not lose on R4600"
    assert t.speedup_r10000 > 0.97, "HLI schedule must not lose on R10000"
