"""Load harness for repro-serve: ``python benchmarks/bench_serve.py``.

Spawns a real daemon subprocess (``python -m repro.serve.cli --port 0``),
drives it with many concurrent clients, and reports requests/s, latency
percentiles (p50/p95/p99), and cache-hit ratio per phase:

* **cold**  — N distinct sources, first contact: every request is a
  miss and runs the full pipeline;
* **warm**  — the same sources re-requested several times each: the
  shared session should serve (nearly) everything from its memory tier;
* **storm** — 32 byte-identical concurrent requests for a fresh source:
  the coalescer must collapse them into **exactly one** pipeline
  execution, every response carrying the same artifact.

Built-in assertions (the ISSUE's acceptance criteria) fail the run:

* >= 8 concurrent clients, zero failed requests, zero incorrect results
  (per source, every response across every phase agrees on the
  alpha-equivalent ``rtl_sha256``);
* warm p95 latency < cold median latency;
* warm cache-hit ratio > 80%;
* the 32-request storm increments the daemon's ``pipeline_runs`` by
  exactly 1;
* the daemon drains cleanly on ``shutdown`` and exits 0.

``--quick`` shrinks the corpus for CI smoke (the ``serve-smoke`` job);
``--out`` writes the full JSON report.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import threading
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.stats import percentile as _percentile  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.protocol import recv_frame, send_frame  # noqa: E402

_LISTEN_RE = re.compile(r"repro-serve: listening on (\S+):(\d+)")


def make_source(k: int, loops: int = 12) -> str:
    """A distinct, pipeline-heavy source per index ``k``."""
    lines = [f"int acc{k};", f"int buf{k}[16];"]
    lines += [
        f"int work{k}(int a, int b) {{",
        "    int r = a + b;",
        "    int i;",
        "    for (i = 0; i < 16; i++) {",
        f"        buf{k}[i] = r * {k % 7 + 2} + i;",
        f"        r = r + buf{k}[i] / {k % 3 + 2};",
        "    }",
    ]
    for j in range(loops):
        lines.append(f"    r = r ^ (a * {j + 1} + b % {j % 5 + 2});")
    lines += ["    return r;", "}"]
    lines += [
        "int main() {",
        "    int s = 1;",
        "    int i;",
        "    for (i = 0; i < 4; i++) {",
        f"        s = s + work{k}(s, i + {k});",
        "    }",
        f"    acc{k} = s;",
        "    return s - s / 8 * 8;",
        "}",
    ]
    return "\n".join(lines) + "\n"


def spawn_daemon(cache_dir: str, workers: int) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.serve.cli",
            "--port", "0",
            "--workers", str(workers),
            "--max-inflight", "64",
            "--cache-dir", cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    m = _LISTEN_RE.search(line)
    if not m:
        proc.kill()
        raise SystemExit(f"daemon failed to start: {line!r}")
    return proc, m.group(1), int(m.group(2))


class PhaseResult:
    def __init__(self, name: str) -> None:
        self.name = name
        self.latencies: list[float] = []
        self.responses: list[tuple[str, dict]] = []  # (filename, summary)
        self.rejections = 0
        self.errors: list[str] = []
        self.wall = 0.0
        self._lock = threading.Lock()

    def record(self, filename: str, summary: dict, dt: float, rejections: int) -> None:
        with self._lock:
            self.latencies.append(dt)
            self.responses.append((filename, summary))
            self.rejections += rejections

    def fail(self, msg: str) -> None:
        with self._lock:
            self.errors.append(msg)

    @property
    def hit_ratio(self) -> float:
        if not self.responses:
            return 0.0
        hits = sum(
            1 for _, s in self.responses if s.get("cache_state") in ("memory", "disk")
        )
        return hits / len(self.responses)

    def percentile(self, p: float) -> float:
        if not self.latencies:
            return 0.0
        return _percentile(self.latencies, p)

    def report(self) -> dict:
        n = len(self.responses)
        return {
            "requests": n,
            "failed": len(self.errors),
            "rejections_retried": self.rejections,
            "wall_seconds": round(self.wall, 3),
            "requests_per_second": round(n / self.wall, 1) if self.wall else 0.0,
            "latency_ms": {
                "p50": round(self.percentile(50) * 1e3, 2),
                "p95": round(self.percentile(95) * 1e3, 2),
                "p99": round(self.percentile(99) * 1e3, 2),
            },
            "hit_ratio": round(self.hit_ratio, 3),
        }


def run_phase(
    name: str, host: str, port: int, jobs: list[tuple[str, str]], clients: int
) -> PhaseResult:
    """Fan ``jobs`` out over ``clients`` threads, one connection each."""
    result = PhaseResult(name)
    barrier = threading.Barrier(clients)
    it = iter(jobs)
    pick = threading.Lock()

    def worker() -> None:
        try:
            with ServeClient(host, port, timeout=120.0) as client:
                barrier.wait(timeout=30)
                while True:
                    with pick:
                        job = next(it, None)
                    if job is None:
                        return
                    source, filename = job
                    t0 = perf_counter()
                    summary, rejections = client.compile_retry(
                        source, filename, retries=64
                    )
                    result.record(filename, summary, perf_counter() - t0, rejections)
        except Exception as exc:  # noqa: BLE001 - the report asserts on this
            result.fail(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    t0 = perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    result.wall = perf_counter() - t0
    return result


def run_storm(
    host: str, port: int, source: str, filename: str, n: int = 32
) -> PhaseResult:
    """Pipeline ``n`` byte-identical requests down one connection at once.

    Every frame is written before any response is read, so all ``n``
    requests are in flight together — the regime the coalescer must
    collapse into a single pipeline execution.  (The daemon's
    ``max_inflight`` must exceed ``n``: coalesced waiters hold their
    admission slots, and a queued request that is only admitted after
    the leader finishes would miss the coalescing window and count as a
    fresh — if cache-warm — pipeline run.)
    """
    import socket

    result = PhaseResult("storm")
    t0 = perf_counter()
    with socket.create_connection((host, port), timeout=120.0) as sock:
        for rid in range(n):
            send_frame(
                sock,
                {"op": "compile", "id": rid, "source": source, "filename": filename},
            )
        for _ in range(n):
            resp = recv_frame(sock)
            if resp is None:
                result.fail("connection closed mid-storm")
                break
            if resp.get("status") != "ok":
                result.fail(f"storm request failed: {resp!r}")
                continue
            result.record(filename, resp["result"], perf_counter() - t0, 0)
    result.wall = perf_counter() - t0
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client connections (default %(default)s)")
    parser.add_argument("--sources", type=int, default=12,
                        help="distinct programs in the corpus (default %(default)s)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm re-requests per source (default %(default)s)")
    parser.add_argument("--workers", type=int, default=4,
                        help="daemon worker threads (default %(default)s)")
    parser.add_argument("--quick", action="store_true",
                        help="small corpus for CI smoke (keeps 8 clients)")
    parser.add_argument("--out", default="BENCH_serve.json", metavar="PATH",
                        help="JSON report path (default %(default)s)")
    args = parser.parse_args(argv)
    if args.quick:
        args.sources = min(args.sources, 6)
        args.repeats = min(args.repeats, 2)
    if args.clients < 8:
        parser.error("--clients must be >= 8 (the acceptance floor)")

    corpus = [(make_source(k), f"bench_{k}.c") for k in range(args.sources)]
    cache_dir = str(REPO_ROOT / ".bench-serve-cache")
    proc, host, port = spawn_daemon(cache_dir, args.workers)
    failures: list[str] = []
    report: dict = {
        "clients": args.clients,
        "sources": args.sources,
        "workers": args.workers,
        "python": platform.python_version(),
        "phases": {},
    }
    try:
        cold = run_phase("cold", host, port, list(corpus), args.clients)
        warm = run_phase(
            "warm", host, port, list(corpus) * args.repeats, args.clients
        )

        with ServeClient(host, port) as c:
            before = c.stats()["counters"]
        storm = run_storm(host, port, make_source(9901, loops=32), "storm.c", n=32)
        with ServeClient(host, port) as c:
            after = c.stats()["counters"]
            server_stats = c.stats()

        for phase in (cold, warm, storm):
            report["phases"][phase.name] = phase.report()
            for msg in phase.errors:
                failures.append(f"{phase.name}: request failed: {msg}")

        # -- correctness: every response for a filename agrees on the RTL --
        digests: dict[str, set] = {}
        for phase in (cold, warm, storm):
            for filename, summary in phase.responses:
                digests.setdefault(filename, set()).add(summary.get("rtl_sha256"))
        for filename, seen in sorted(digests.items()):
            if len(seen) != 1 or None in seen:
                failures.append(
                    f"incorrect results: {filename} produced {len(seen)} distinct"
                    f" rtl digests across phases"
                )
        report["distinct_digests_per_source"] = {
            f: len(s) for f, s in sorted(digests.items())
        }

        # -- latency: the warm path must actually be faster -----------------
        cold_median = cold.percentile(50)
        warm_p95 = warm.percentile(95)
        if not warm_p95 < cold_median:
            failures.append(
                f"warm p95 {warm_p95 * 1e3:.1f}ms not below cold median"
                f" {cold_median * 1e3:.1f}ms"
            )

        # -- cache: the warm phase must ride the shared session -------------
        if not warm.hit_ratio > 0.8:
            failures.append(f"warm hit ratio {warm.hit_ratio:.1%} <= 80%")

        # -- coalescing: 32 identical requests, one pipeline execution ------
        storm_runs = after["pipeline_runs"] - before["pipeline_runs"]
        report["storm"] = {
            "requests": 32,
            "pipeline_runs": storm_runs,
            "coalesced_hits": after["coalesced_hits"] - before["coalesced_hits"],
        }
        if storm_runs != 1:
            failures.append(
                f"storm of 32 identical requests ran the pipeline {storm_runs}"
                f" times (want exactly 1)"
            )

        report["server_counters"] = server_stats["counters"]
        report["server_session_cache"] = server_stats["session_cache"]

        # -- graceful shutdown ----------------------------------------------
        with ServeClient(host, port) as c:
            c.shutdown()
    finally:
        try:
            exit_code = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            exit_code = -1
            failures.append("daemon did not drain within 30s of shutdown")
    drain_log = proc.stdout.read()
    if exit_code != 0:
        failures.append(f"daemon exited {exit_code} (want 0)")
    if "drained" not in drain_log:
        failures.append(f"daemon never reported a drain: {drain_log!r}")
    report["daemon_exit_code"] = exit_code
    report["failures"] = failures

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for name, phase in report["phases"].items():
        lat = phase["latency_ms"]
        print(
            f"{name:>6}: {phase['requests']} requests in {phase['wall_seconds']}s"
            f" ({phase['requests_per_second']} req/s),"
            f" p50={lat['p50']}ms p95={lat['p95']}ms p99={lat['p99']}ms,"
            f" hit ratio {phase['hit_ratio']:.0%},"
            f" {phase['rejections_retried']} rejection(s) retried"
        )
    print(
        f" storm: 32 identical requests -> {report['storm']['pipeline_runs']}"
        f" pipeline run(s), {report['storm']['coalesced_hits']} coalesced"
    )
    print(f"wrote {args.out}")
    if failures:
        print("\nFAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("bench_serve: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
