"""Cache-sensitivity extension (beyond the paper's tables).

The paper ties the R10000's larger speedups to its memory-system
sensitivity.  This extension times one HLI-scheduled fp benchmark with a
flat memory vs the modelled R4600/R10000 cache hierarchies, reporting
miss rates and the cycle inflation.  It also checks the scheduling win
survives when cache stalls are added (it should: scheduling and locality
are mostly orthogonal here).
"""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.machine.executor import execute
from repro.machine.memory import r4600_hierarchy, r10000_hierarchy
from repro.machine.pipeline import R4600Model
from repro.machine.superscalar import R10000Model
from repro.workloads.suite import by_name


pytestmark = pytest.mark.bench

@pytest.fixture(scope="module")
def traces():
    bench = by_name("102.swim")
    out = {}
    for mode in (DDGMode.GCC, DDGMode.COMBINED):
        comp = compile_source(bench.source, bench.name, CompileOptions(mode=mode))
        out[mode] = execute(comp.rtl).trace
    return out


def test_cache_adds_stalls_r10000(benchmark, traces):
    def run():
        flat = R10000Model().time(traces[DDGMode.COMBINED]).cycles
        hier = r10000_hierarchy()
        cached = R10000Model(cache=hier).time(traces[DDGMode.COMBINED]).cycles
        return flat, cached, hier.stats()

    flat, cached, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"flat_cycles": flat, "cached_cycles": cached, **stats})
    assert cached >= flat
    assert stats["l1_miss_rate"] < 0.5  # the working set mostly fits


def test_cache_adds_stalls_r4600(benchmark, traces):
    def run():
        flat = R4600Model().time(traces[DDGMode.COMBINED]).cycles
        hier = r4600_hierarchy()
        cached = R4600Model(cache=hier).time(traces[DDGMode.COMBINED]).cycles
        return flat, cached, hier.stats()

    flat, cached, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"flat_cycles": flat, "cached_cycles": cached, **stats})
    assert cached >= flat


def test_scheduling_win_survives_caches(benchmark, traces):
    def run():
        hier = r10000_hierarchy()
        gcc = R10000Model(cache=hier).time(traces[DDGMode.GCC]).cycles
        hier2 = r10000_hierarchy()
        hli = R10000Model(cache=hier2).time(traces[DDGMode.COMBINED]).cycles
        return gcc, hli

    gcc, hli = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"gcc_cycles": gcc, "hli_cycles": hli, "speedup": round(gcc / hli, 3)}
    )
    assert hli <= gcc * 1.02
