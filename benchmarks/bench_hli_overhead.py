"""HLI machinery micro-benchmarks: query throughput and import cost.

Not a paper table, but the paper's Section 3.2.1 argues the design is
cheap for the back-end ("a hash table is constructed ... to allow GCC
quick access").  These benchmarks keep the claim honest in this
implementation: query latency, mapping cost, and binary decode cost are
measured on the largest workload.
"""

from __future__ import annotations

import itertools

import pytest

from repro import CompileOptions, compile_source
from repro.backend.mapping import map_function
from repro.hli.binio import decode_hli, encode_hli
from repro.hli.query import HLIQuery
from repro.workloads.suite import by_name


pytestmark = pytest.mark.bench

@pytest.fixture(scope="module")
def big_compilation():
    bench = by_name("034.mdljdp2")
    return compile_source(bench.source, bench.name, CompileOptions(schedule=False))


def test_query_equiv_acc_throughput(benchmark, big_compilation):
    entry = big_compilation.hli.entry("forces")
    query = HLIQuery(entry)
    items = [iid for iid, _ in entry.line_table.all_items()]
    pairs = list(itertools.islice(itertools.combinations(items, 2), 2000))

    def run():
        count = 0
        for a, b in pairs:
            if query.get_equiv_acc(a, b).value != "none":
                count += 1
        return count

    hits = benchmark(run)
    benchmark.extra_info.update({"pairs": len(pairs), "dependent_pairs": hits})
    assert hits > 0


def test_query_index_construction(benchmark, big_compilation):
    entry = big_compilation.hli.entry("forces")
    query = benchmark(HLIQuery, entry)
    assert query.item_home(1) is not None


def test_line_table_mapping_cost(benchmark, big_compilation):
    fn = big_compilation.rtl.functions["forces"]
    entry = big_compilation.hli.entry("forces")
    stats = benchmark(map_function, fn, entry)
    assert stats.unmapped == 0


def test_binary_decode_cost(benchmark, big_compilation):
    data = encode_hli(big_compilation.hli)
    decoded = benchmark(decode_hli, data)
    assert set(decoded.entries) == set(big_compilation.hli.entries)
    benchmark.extra_info["hli_bytes"] = len(data)
