"""Software-pipelining extension — LCDD-driven initiation intervals.

The paper argues LCDD information is "indispensable for a cyclic
scheduling algorithm such as software pipelining" (Section 3.2.2) but
never quantifies it.  This extension does: for every innermost loop of
the fp benchmarks, compute the minimum initiation interval (MII) bound
twice — once with GCC 2.7's conservative distance-1 assumption for every
unprovable memory pair, once with the HLI LCDD distances — and report
the headroom the HLI opens for a modulo scheduler.
"""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.backend.swp import analyze_loop_pipelining
from repro.hli.query import HLIQuery
from repro.workloads.suite import by_name

pytestmark = pytest.mark.bench

#: fp benchmarks whose innermost loops are pipelinable (no calls inside).
CANDIDATES = ["101.tomcatv", "102.swim", "107.mgrid", "052.alvinn", "103.su2cor"]


@pytest.mark.parametrize("name", CANDIDATES)
def test_mii_headroom(benchmark, name):
    bench = by_name(name)

    def compute():
        comp = compile_source(bench.source, bench.name, CompileOptions(schedule=False))
        rows = []
        for fname, fn in comp.rtl.functions.items():
            entry = comp.hli.entries.get(fname)
            if entry is None:
                continue
            reports = analyze_loop_pipelining(fn, HLIQuery(entry))
            rows.extend(reports)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert rows, "no pipelinable loops found"
    gcc_miis = [r.gcc.mii for r in rows]
    hli_miis = [r.hli.mii for r in rows]
    benchmark.extra_info.update(
        {
            "loops": len(rows),
            "gcc_mii_total": sum(gcc_miis),
            "hli_mii_total": sum(hli_miis),
            "mean_headroom": round(
                sum(r.headroom for r in rows) / len(rows), 3
            ),
        }
    )
    # LCDD information never makes the bound worse, and helps somewhere
    assert all(h <= g for g, h in zip(gcc_miis, hli_miis))
    assert sum(hli_miis) <= sum(gcc_miis)


def test_mii_helps_on_streaming_loops(benchmark):
    """A pure streaming loop: conservative RecMII is latency-bound, the
    LCDD-informed RecMII collapses to ~1 (fully pipelinable)."""
    src = """double x[512];
double y[512];
double z[512];
int main() {
    int i;
    for (i = 0; i < 512; i++) {
        z[i] = x[i] * 2.0 + y[i];
    }
    return 0;
}
"""

    def compute():
        comp = compile_source(src, "stream.c", CompileOptions(schedule=False))
        fn = comp.rtl.functions["main"]
        query = HLIQuery(comp.hli.entry("main"))
        return analyze_loop_pipelining(fn, query, issue_width=16)

    reports = benchmark.pedantic(compute, rounds=1, iterations=1)
    r = max(reports, key=lambda x: x.gcc.rec_mii)
    benchmark.extra_info.update(
        {"gcc_rec_mii": r.gcc.rec_mii, "hli_rec_mii": r.hli.rec_mii}
    )
    assert r.hli.rec_mii < r.gcc.rec_mii
