"""Figure 6 — HLI maintenance under loop unrolling, and its payoff.

Unrolls a recurrence loop by 4 with full HLI maintenance (cloned items,
rewritten LCDD distances), then schedules the enlarged basic block under
GCC-only vs combined dependence information and times both on the
R10000-like model.  Unrolling is exactly where the maintained HLI pays:
the larger block gives the scheduler room that only accurate dependence
information can exploit.
"""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.machine.executor import execute
from repro.machine.superscalar import R10000Model

pytestmark = pytest.mark.bench

RECURRENCE = """double acc[256];
double src[256];
int main() {
    int i, t;
    for (i = 0; i < 256; i++) {
        src[i] = 0.5 * i;
        acc[i] = 1.0;
    }
    for (t = 0; t < 6; t++) {
        for (i = 0; i < 256; i++) {
            acc[i] = acc[i] * 0.99 + src[i];
        }
    }
    return acc[128] > 0.0;
}
"""


def _run(mode: DDGMode, unroll: int):
    comp = compile_source(
        RECURRENCE, "fig6.c", CompileOptions(mode=mode, unroll=unroll)
    )
    res = execute(comp.rtl)
    cycles = R10000Model().time(res.trace).cycles
    return comp, res, cycles


def test_fig6_unroll_maintenance_clones_items(benchmark):
    comp, res, _ = benchmark.pedantic(
        _run, args=(DDGMode.COMBINED, 4), rounds=1, iterations=1
    )
    stats = comp.opt_stats.unroll
    benchmark.extra_info.update(
        {
            "loops_unrolled": stats.loops_unrolled,
            "items_cloned": stats.items_cloned,
        }
    )
    assert stats.loops_unrolled >= 1
    assert stats.items_cloned > 0
    # every cloned memory reference still maps to an item
    for fn in comp.rtl.functions.values():
        for insn in fn.mem_insns():
            assert insn.hli_item is not None


def test_fig6_unrolled_hli_vs_gcc_schedule(benchmark):
    def compare():
        _, res_gcc, cycles_gcc = _run(DDGMode.GCC, 4)
        _, res_hli, cycles_hli = _run(DDGMode.COMBINED, 4)
        assert res_gcc.ret == res_hli.ret
        return cycles_gcc, cycles_hli

    cycles_gcc, cycles_hli = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "cycles_gcc_schedule": cycles_gcc,
            "cycles_hli_schedule": cycles_hli,
            "speedup": round(cycles_gcc / cycles_hli, 3),
        }
    )
    assert cycles_hli <= cycles_gcc


def test_fig6_unroll_plus_hli_beats_no_unroll(benchmark):
    def compare():
        _, _, base = _run(DDGMode.COMBINED, 1)
        _, _, unrolled = _run(DDGMode.COMBINED, 4)
        return base, unrolled

    base, unrolled = benchmark.pedantic(compare, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"cycles_no_unroll": base, "cycles_unroll4": unrolled}
    )
    assert unrolled < base
