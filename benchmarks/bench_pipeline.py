"""Pipeline perf-trajectory harness: ``python benchmarks/bench_pipeline.py``.

Compiles the full benchmark suite with :mod:`repro.obs` instrumentation
enabled and writes a machine-readable ``BENCH_pipeline.json`` capturing:

* per-stage wall time (frontend / analysis / lowering / mapping /
  scheduling / …), aggregated across the suite and broken out per
  benchmark;
* the complete metrics registry (HLI query verdicts, DDG edges
  kept/deleted, mapping coverage, scheduler statistics);
* total compile wall time per benchmark.

Future PRs diff this file's output against a previous run to see where
a change moved compile time — the perf baseline the ROADMAP's caching /
batching / sharding items need.  Unlike the ``bench_*.py`` files driven
by pytest-benchmark, this is a standalone script so CI can run it
without extra plugins.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from time import perf_counter


def bench_suite(repeats: int = 1) -> dict:
    """Compile every benchmark ``repeats`` times with obs enabled."""
    from repro import CompileOptions, compile_source, obs
    from repro.backend.ddg import DDGMode
    from repro.obs import export, trace
    from repro.workloads.suite import BENCHMARKS

    per_benchmark: list[dict] = []
    obs.reset()
    with obs.enabled_scope():
        for spec in BENCHMARKS:
            best = None
            for _ in range(repeats):
                marker = len(trace.roots())
                t0 = perf_counter()
                compile_source(
                    spec.source, spec.name, CompileOptions(mode=DDGMode.COMBINED)
                )
                elapsed = perf_counter() - t0
                if best is None or elapsed < best:
                    best = elapsed
                roots = trace.roots()[marker:]
            per_benchmark.append(
                {
                    "benchmark": spec.name,
                    "suite": spec.suite,
                    "compile_seconds": round(best or 0.0, 6),
                    "stages": export.span_aggregates(roots),
                }
            )
    stats = export.stats_snapshot()
    return {
        "python": platform.python_version(),
        "repeats": repeats,
        "benchmarks": per_benchmark,
        "total_compile_seconds": round(
            sum(b["compile_seconds"] for b in per_benchmark), 6
        ),
        "stage_totals": stats["spans"],
        "counters": stats["counters"],
        "histograms": stats["histograms"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compile the whole suite with instrumentation on and "
        "emit a machine-readable per-stage timing baseline."
    )
    parser.add_argument(
        "--out",
        default="BENCH_pipeline.json",
        metavar="PATH",
        help="output file (default: %(default)s); '-' for stdout",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="compile each benchmark N times, keep the fastest (default: 1)",
    )
    args = parser.parse_args(argv)
    doc = bench_suite(repeats=max(1, args.repeats))
    rendered = json.dumps(doc, indent=2)
    if args.out == "-":
        print(rendered)
    else:
        with open(args.out, "w") as f:
            f.write(rendered + "\n")
        print(
            f"wrote {args.out}: {len(doc['benchmarks'])} benchmarks, "
            f"{doc['total_compile_seconds']:.2f}s total compile time"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
