"""Pipeline perf-trajectory harness: ``python benchmarks/bench_pipeline.py``.

Compiles the full benchmark suite with :mod:`repro.obs` instrumentation
enabled and writes a machine-readable ``BENCH_pipeline.json`` capturing:

* per-stage wall time (frontend / analysis / lowering / mapping /
  scheduling / …), aggregated across the suite and broken out per
  benchmark;
* the complete metrics registry (HLI query verdicts, DDG edges
  kept/deleted, mapping coverage, scheduler statistics);
* total compile wall time per benchmark;
* with ``--cache-dir``, the :class:`~repro.driver.session.CompilationSession`
  cache counters, so a cold run and a warm rerun over the same directory
  quantify what the artifact cache buys (see benchmarks/TRAJECTORY.md).

``--jobs N`` fans the suite out over a process pool via
``CompilationSession.compile_many``; per-stage span breakdowns happen in
the workers and are not collected in that mode, so parallel runs report
wall-clock totals only — use the serial mode for stage attribution.

Future PRs diff this file's output against a previous run to see where
a change moved compile time — the perf baseline the ROADMAP's caching /
batching / sharding items need.  Unlike the ``bench_*.py`` files driven
by pytest-benchmark, this is a standalone script so CI can run it
without extra plugins.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from time import perf_counter

from repro.bench.stats import Summary


def _session_for(cache_dir: str | None, cache_max_bytes: int | None = None):
    from repro.driver.session import CompilationSession

    return CompilationSession(cache_dir=cache_dir, max_disk_bytes=cache_max_bytes)


def bench_suite(
    repeats: int = 1,
    cache_dir: str | None = None,
    jobs: int = 1,
    cache_max_bytes: int | None = None,
) -> dict:
    """Compile every benchmark ``repeats`` times with obs enabled."""
    from repro import CompileOptions, obs
    from repro.backend.ddg import DDGMode
    from repro.obs import export, trace
    from repro.workloads.suite import BENCHMARKS

    session = _session_for(cache_dir, cache_max_bytes)
    per_benchmark: list[dict] = []
    obs.reset()
    with obs.enabled_scope():
        if jobs != 1:
            jobs_list = [
                (spec.source, spec.name, CompileOptions(mode=DDGMode.COMBINED))
                for spec in BENCHMARKS
            ]
            t0 = perf_counter()
            comps = session.compile_many(jobs_list, max_workers=jobs)
            batch_seconds = perf_counter() - t0
            for spec, comp in zip(BENCHMARKS, comps):
                per_benchmark.append(
                    {
                        "benchmark": spec.name,
                        "suite": spec.suite,
                        "cache_state": comp.cache_state,
                    }
                )
            total = batch_seconds
        else:
            for spec in BENCHMARKS:
                samples: list[float] = []
                best = None
                state = "cold"
                for _ in range(repeats):
                    marker = len(trace.roots())
                    t0 = perf_counter()
                    comp = session.compile(
                        spec.source, spec.name, CompileOptions(mode=DDGMode.COMBINED)
                    )
                    elapsed = perf_counter() - t0
                    samples.append(elapsed)
                    if best is None or elapsed < best:
                        best = elapsed
                        state = comp.cache_state
                    roots = trace.roots()[marker:]
                per_benchmark.append(
                    {
                        "benchmark": spec.name,
                        "suite": spec.suite,
                        "compile_seconds": round(best or 0.0, 6),
                        "compile_summary": Summary.from_values(samples).to_dict(),
                        "cache_state": state,
                        "stages": export.span_aggregates(roots),
                    }
                )
            total = sum(b["compile_seconds"] for b in per_benchmark)
    stats = export.stats_snapshot()
    return {
        "python": platform.python_version(),
        "repeats": repeats,
        "jobs": jobs,
        "benchmarks": per_benchmark,
        "total_compile_seconds": round(total, 6),
        "session_cache": session.stats.to_dict(),
        "stage_totals": stats["spans"],
        "counters": stats["counters"],
        "histograms": stats["histograms"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compile the whole suite with instrumentation on and "
        "emit a machine-readable per-stage timing baseline."
    )
    parser.add_argument(
        "--out",
        default="BENCH_pipeline.json",
        metavar="PATH",
        help="output file (default: %(default)s); '-' for stdout",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        metavar="N",
        help="compile each benchmark N times, keep the fastest (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="route compiles through a disk-backed CompilationSession; "
        "rerun with the same DIR to measure the warm path",
    )
    parser.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="LRU-evict the disk cache above N bytes "
        "(default: unbounded; requires --cache-dir)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan the suite out over N worker processes via compile_many "
        "(0 = one per core; default: 1, serial with stage breakdowns)",
    )
    args = parser.parse_args(argv)
    if args.cache_max_bytes is not None and not args.cache_dir:
        parser.error("--cache-max-bytes requires --cache-dir")
    doc = bench_suite(
        repeats=max(1, args.repeats),
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        cache_max_bytes=args.cache_max_bytes,
    )
    rendered = json.dumps(doc, indent=2)
    if args.out == "-":
        print(rendered)
    else:
        with open(args.out, "w") as f:
            f.write(rendered + "\n")
        states = [b.get("cache_state", "cold") for b in doc["benchmarks"]]
        warm = sum(1 for s in states if s != "cold")
        print(
            f"wrote {args.out}: {len(doc['benchmarks'])} benchmarks, "
            f"{doc['total_compile_seconds']:.2f}s total compile time"
            f" ({warm}/{len(states)} cache-warm)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
