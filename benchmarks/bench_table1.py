"""Table 1 — benchmark program characteristics.

Regenerates, per benchmark: code size (lines), HLI size, and HLI bytes
per source line; plus the int/fp means.  The paper's headline (fp
programs carry roughly twice the HLI per line of int programs, because
they have more memory references per line) is asserted, and every row is
attached to the benchmark record.
"""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.hli.sizes import size_report
from repro.workloads.suite import BENCHMARKS, float_benchmarks, integer_benchmarks


pytestmark = pytest.mark.bench

def _row(bench):
    comp = compile_source(bench.source, bench.name, CompileOptions(schedule=False))
    return size_report(comp.hli, bench.source)


@pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
def test_table1_row(benchmark, bench):
    rep = benchmark(_row, bench)
    benchmark.extra_info.update(
        {
            "suite": bench.suite,
            "code_lines": rep.code_lines,
            "hli_bytes": rep.hli_bytes,
            "hli_bytes_per_line": round(rep.bytes_per_line, 2),
            "paper_bytes_per_line": bench.paper.hli_per_line,
        }
    )
    assert rep.hli_bytes > 0


def test_table1_means(benchmark):
    def compute():
        def mean(benches):
            vals = [_row(b).bytes_per_line for b in benches]
            return sum(vals) / len(vals)

        return mean(integer_benchmarks()), mean(float_benchmarks())

    int_mean, fp_mean = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "int_mean_bytes_per_line": round(int_mean, 1),
            "fp_mean_bytes_per_line": round(fp_mean, 1),
            "paper_int_mean": 13,
            "paper_fp_mean": 27,
        }
    )
    # the paper's shape: fp programs need more HLI per line than int
    assert fp_mean > int_mean
