"""Shared benchmark fixtures and reporting helpers.

Every benchmark in this directory regenerates one of the paper's tables
or figures (see DESIGN.md's experiment index).  pytest-benchmark provides
the timing envelope; the *measured statistics* — edge reductions, HLI
sizes, speedups — are attached to each benchmark's ``extra_info`` so
``--benchmark-json`` output carries the full reproduction record.
"""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.workloads.suite import BENCHMARKS


@pytest.fixture(scope="session")
def compiled_suite():
    """All benchmarks compiled once under the combined mode."""
    out = {}
    for b in BENCHMARKS:
        out[b.name] = compile_source(
            b.source, b.name, CompileOptions(mode=DDGMode.COMBINED)
        )
    return out
