"""Edit-recompile latency harness: ``python benchmarks/bench_incremental.py``.

Measures what the function-grained artifact cache buys on the canonical
incremental workload — *edit one function, rebuild the file* — across
file sizes (1, 4, and 16 functions per file).  For each size it times
three rebuild strategies on the same line-count-preserving edit:

* **cold** — ``compile_source``, the whole pipeline from scratch; this
  is also what PR 4's file-keyed cache does on any edit, since the edit
  retires the whole-file key;
* **warm-file** — a warm session with ``reuse_backend=False``: the
  per-function front-end tier splices parse/HLI/lowering artifacts for
  unedited functions, but the back end re-runs every function (the
  whole-file warm residual PR 4 left on the table);
* **warm-incremental** — the full function-grained session: back-end
  passes run for exactly the edited function plus its transitive
  callers; everything else is spliced from the back-end tier.

The harness asserts the invalidation invariant (recompiled set ==
edited function + transitive callers == 2 functions here, since every
helper is called only by ``main``) and, for files of >= 8 functions,
that warm-incremental beats both other strategies.  Results land in
``BENCH_incremental.json`` (see benchmarks/TRAJECTORY.md).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from time import perf_counter

from repro.bench.stats import Summary

SIZES = (1, 4, 16)


def make_source(n_functions: int) -> str:
    """A file of ``n_functions`` look-alike helpers, all called by main.

    Each helper carries several scheduling-relevant loops so the
    back-end passes (unroll, CSE, LICM, DDG + list scheduling) dominate
    its compile time — the regime the back-end artifact tier targets.
    """
    lines = ["int gacc;"]
    for k in range(n_functions):
        lines += [
            f"int f{k}(int a, int b) {{",
            f"    int r = a * {k + 1} + b;",
            "    int t;",
            "    t = b;",
        ]
        # long straight-line blocks: DDG construction and list
        # scheduling are superlinear in block size, keeping the
        # back-end share representative of an optimizing compiler
        for j in range(24):
            lines.append(
                f"    r = r + t * {j % 7 + 1} - a / {j % 5 + 2};"
                f" t = t ^ r + {k + j};"
            )
        lines += ["    return r + t;", "}"]
    lines += ["int main() {", "    int s = 1;"]
    for k in range(n_functions):
        lines.append(f"    s = s + f{k}(s, {k + 2});")
    lines += ["    gacc = s;", "    return s - s / 2 * 2;", "}"]
    return "\n".join(lines) + "\n"


def edit_one(source: str) -> str:
    """Perturb f0's seed expression; every line keeps its number."""
    return source.replace("int r = a * 1 + b;", "int r = a * 1 + b + 9;")


def _best(fn, repeats: int) -> tuple[float, object, Summary]:
    """Fastest-of-N plus the full distribution over the N repeats."""
    best, result, samples = None, None, []
    for _ in range(repeats):
        t0 = perf_counter()
        out = fn()
        dt = perf_counter() - t0
        samples.append(dt)
        if best is None or dt < best:
            best, result = dt, out
    return best, result, Summary.from_values(samples)


def bench_incremental(repeats: int = 3) -> dict:
    from repro import CompileOptions
    from repro.driver.compile import compile_source
    from repro.driver.session import CompilationSession

    opts = CompileOptions(cse=True, licm=True)
    sizes = []
    for n in SIZES:
        base, edited = make_source(n), edit_one(make_source(n))
        name = f"inc{n}.c"

        cold_s, _, cold_sum = _best(
            lambda: compile_source(edited, name, opts), repeats
        )

        # the warm strategies time only the post-edit rebuild, so their
        # distributions are collected over the inner interval, not the
        # whole closure (which is dominated by session setup)
        file_samples: list[float] = []
        inc_samples: list[float] = []

        def warm_file():
            sess = CompilationSession(reuse_backend=False)
            sess.compile(base, name, opts)
            t0 = perf_counter()
            comp = sess.compile(edited, name, opts)
            dt = perf_counter() - t0
            file_samples.append(dt)
            return dt, comp

        def warm_incremental():
            sess = CompilationSession()
            sess.compile(base, name, opts)
            t0 = perf_counter()
            comp = sess.compile(edited, name, opts)
            dt = perf_counter() - t0
            inc_samples.append(dt)
            return dt, comp

        _best(warm_file, repeats)
        _, (_, comp), _ = _best(warm_incremental, repeats)
        file_inner = min(file_samples)
        inc_inner = min(inc_samples)

        ran: set[str] = set()
        for units in comp.pipeline_stats.function_runs.values():
            ran |= set(units)
        expected = {"f0", "main"} if n > 0 else {"main"}
        assert ran == expected, f"{n} functions: recompiled {sorted(ran)}"
        if n >= 8:
            assert inc_inner < file_inner, (
                f"{n} functions: warm-incremental {inc_inner:.4f}s not below "
                f"whole-file warm {file_inner:.4f}s"
            )
        sizes.append(
            {
                "functions": n,
                "recompiled": sorted(ran),
                "cold_seconds": round(cold_s, 6),
                "warm_file_seconds": round(file_inner, 6),
                "warm_incremental_seconds": round(inc_inner, 6),
                "speedup_vs_cold": round(cold_s / inc_inner, 2),
                "speedup_vs_warm_file": round(file_inner / inc_inner, 2),
                "cold_summary": cold_sum.to_dict(),
                "warm_file_summary": Summary.from_values(file_samples).to_dict(),
                "warm_incremental_summary": Summary.from_values(
                    inc_samples
                ).to_dict(),
            }
        )
    return {
        "python": platform.python_version(),
        "repeats": repeats,
        "sizes": sizes,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure edit-recompile latency vs file size under the "
        "function-grained artifact cache."
    )
    parser.add_argument(
        "--out",
        default="BENCH_incremental.json",
        metavar="PATH",
        help="output file (default: %(default)s); '-' for stdout",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="time each strategy N times, keep the fastest (default: 3)",
    )
    args = parser.parse_args(argv)
    doc = bench_incremental(repeats=max(1, args.repeats))
    rendered = json.dumps(doc, indent=2)
    if args.out == "-":
        print(rendered)
    else:
        with open(args.out, "w") as f:
            f.write(rendered + "\n")
        for row in doc["sizes"]:
            print(
                f"{row['functions']:3d} fn: cold {row['cold_seconds']:.4f}s, "
                f"warm-file {row['warm_file_seconds']:.4f}s, "
                f"warm-incremental {row['warm_incremental_seconds']:.4f}s "
                f"({row['speedup_vs_cold']}x vs cold)"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
