"""Design-choice ablations called out in DESIGN.md §5.

* zero-distance merging (paper Section 3.1.2) — disabling it must not
  change query answers' soundness, but grows the HLI;
* maybe-lifted merging (the size-reduction rule behind ``b[0..9]`` in
  Figure 2) — disabling it grows the equivalent-access tables;
* region-scoped representation vs a naive flat item-pair list — the
  structural reason the HLI stays small (near-linear in items rather
  than quadratic).
"""

from __future__ import annotations

import pytest

from repro.analysis.builder import build_hli
from repro.analysis.eqclasses import PartitionOptions
from repro.frontend import parse_and_check
from repro.hli.sizes import hli_size_bytes
from repro.workloads.generators import StencilParams, stencil_program
from repro.workloads.suite import by_name


pytestmark = pytest.mark.bench

def _build_with(src: str, options: PartitionOptions):
    prog, table = parse_and_check(src)
    hli, _ = build_hli(prog, table, options)
    return hli


@pytest.mark.parametrize(
    "bench_name", ["101.tomcatv", "034.mdljdp2", "008.espresso"]
)
def test_merge_rules_shrink_hli(benchmark, bench_name):
    bench = by_name(bench_name)

    def compute():
        merged = _build_with(bench.source, PartitionOptions())
        unmerged = _build_with(
            bench.source,
            PartitionOptions(merge_zero_distance=False, merge_maybe_lifted=False),
        )
        return hli_size_bytes(merged), hli_size_bytes(unmerged)

    with_merge, without_merge = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "hli_bytes_with_merging": with_merge,
            "hli_bytes_without_merging": without_merge,
            "growth_pct": round(100 * (without_merge / with_merge - 1), 1),
        }
    )
    assert without_merge >= with_merge


def test_merge_ablation_preserves_soundness(benchmark):
    """Query answers may become more conservative, never less."""
    from repro.backend.ddg import DDGMode
    from repro.driver.compile import CompileOptions, compile_source
    from repro.machine.executor import execute

    bench = by_name("101.tomcatv")

    def run_both():
        # run the full pipeline with the merged tables (the default) and
        # confirm execution equality against the GCC-only baseline
        comp_gcc = compile_source(bench.source, bench.name, CompileOptions(mode=DDGMode.GCC))
        comp_hli = compile_source(bench.source, bench.name, CompileOptions(mode=DDGMode.COMBINED))
        r1 = execute(comp_gcc.rtl, collect_trace=False)
        r2 = execute(comp_hli.rtl, collect_trace=False)
        return r1.ret, r2.ret

    r1, r2 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert r1 == r2


def test_region_scoping_beats_flat_pairs(benchmark):
    """HLI size grows near-linearly with item count; a flat dependence
    pair list would grow quadratically."""

    def compute():
        sizes = []
        for arrays in (2, 4, 8):
            src = stencil_program(StencilParams(arrays=arrays, size=48, iters=2))
            prog, table = parse_and_check(src)
            hli, info = build_hli(prog, table)
            n_items = sum(len(u.items) for u in info.units.values())
            pair_bound = n_items * (n_items - 1) // 2 * 9  # 9B per pair entry
            sizes.append((n_items, hli_size_bytes(hli), pair_bound))
        return sizes

    sizes = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info["scaling"] = [
        {"items": n, "hli_bytes": h, "flat_pair_bytes": p} for n, h, p in sizes
    ]
    # region-scoped HLI is far below the flat-pair representation at scale
    n, hli_bytes, pair_bytes = sizes[-1]
    assert hli_bytes < pair_bytes / 2
    # growth from 2 to 8 arrays is much closer to linear (4x) than to
    # quadratic (16x)
    growth = sizes[-1][1] / sizes[0][1]
    assert growth < 8
