"""Timing model tests: R4600 in-order and R10000 out-of-order behaviours."""

from repro import CompileOptions, compile_source
from repro.backend.rtl import Insn, MemRef, Opcode, new_reg
from repro.machine.executor import TraceEvent, execute
from repro.machine.latencies import r4600_latency, r10000_latency
from repro.machine.pipeline import R4600Model
from repro.machine.superscalar import R10000Config, R10000Model


def ev(insn, addr=None):
    return TraceEvent(insn=insn, addr=addr)


def alu(dst, *srcs, op=Opcode.ADD):
    return Insn(op, dst=dst, srcs=srcs)


class TestR4600:
    def test_independent_chain_is_one_per_cycle(self):
        regs = [new_reg() for _ in range(6)]
        trace = [ev(Insn(Opcode.LI, dst=r, imm=1)) for r in regs]
        t = R4600Model().time(trace)
        assert t.cycles == len(regs)
        assert t.ipc == 1.0

    def test_load_use_stall(self):
        addr = new_reg()
        val = new_reg()
        out = new_reg()
        use_immediately = [
            ev(Insn(Opcode.LOAD, dst=val, mem=MemRef(addr=addr)), addr=100),
            ev(alu(out, val, 1)),
        ]
        stall = R4600Model().time(use_immediately).cycles

        other = new_reg()
        separated = [
            ev(Insn(Opcode.LOAD, dst=val, mem=MemRef(addr=addr)), addr=100),
            ev(Insn(Opcode.LI, dst=other, imm=5)),
            ev(alu(out, val, 1)),
        ]
        filled = R4600Model().time(separated).cycles
        # the filled version does MORE work in the SAME cycles
        assert filled == stall + 1 - 1 or filled <= stall + 1

    def test_long_latency_divide(self):
        a, b, c = new_reg(), new_reg(), new_reg()
        trace = [
            ev(Insn(Opcode.LI, dst=a, imm=10)),
            ev(Insn(Opcode.DIV, dst=b, srcs=(a, 2))),
            ev(alu(c, b, 1)),
        ]
        t = R4600Model().time(trace)
        assert t.cycles >= r4600_latency(Insn(Opcode.DIV)) + 2

    def test_branch_penalty(self):
        r = new_reg()
        plain = [ev(Insn(Opcode.LI, dst=r, imm=1))] * 4
        with_branch = plain + [ev(Insn(Opcode.J, label="x"))]
        t0 = R4600Model().time(plain).cycles
        t1 = R4600Model().time(with_branch).cycles
        assert t1 >= t0 + 2  # issue slot + taken penalty

    def test_labels_are_free(self):
        r = new_reg()
        trace = [ev(Insn(Opcode.LABEL, label="x")), ev(Insn(Opcode.LI, dst=r, imm=1))]
        t = R4600Model().time(trace)
        assert t.instructions == 1


class TestR10000:
    def test_wide_issue_beats_r4600(self):
        regs = [new_reg() for _ in range(32)]
        trace = [ev(Insn(Opcode.LI, dst=r, imm=1)) for r in regs]
        t4600 = R4600Model().time(trace)
        t10k = R10000Model().time(trace)
        assert t10k.cycles < t4600.cycles

    def test_dependence_chain_limits_ilp(self):
        r = new_reg()
        trace = [ev(Insn(Opcode.LI, dst=r, imm=0))]
        cur = r
        for _ in range(16):
            nxt = new_reg()
            trace.append(ev(alu(nxt, cur, 1)))
            cur = nxt
        chain = R10000Model().time(trace).cycles

        indep = [ev(Insn(Opcode.LI, dst=new_reg(), imm=1)) for _ in range(17)]
        flat = R10000Model().time(indep).cycles
        assert chain > flat

    def test_load_waits_for_unresolved_store(self):
        """The paper's R10000 mechanism: a load sits behind a store whose
        address depends on a long-latency computation."""
        slow = new_reg()
        addr_s = new_reg()
        addr_l = new_reg()
        val = new_reg()
        data = new_reg()
        base = [
            ev(Insn(Opcode.LI, dst=data, imm=1)),
            ev(Insn(Opcode.LI, dst=slow, imm=64)),
            ev(Insn(Opcode.DIV, dst=addr_s, srcs=(slow, 2))),  # slow address
            ev(Insn(Opcode.STORE, srcs=(data,), mem=MemRef(addr=addr_s, is_store=True)), 200),
            ev(Insn(Opcode.LOAD, dst=val, mem=MemRef(addr=addr_l)), 300),
        ]
        behind = R10000Model().time(base).cycles
        # same work with the load scheduled BEFORE the store
        reordered = [base[0], base[1], base[4], base[2], base[3]]
        ahead = R10000Model().time(reordered).cycles
        assert ahead < behind

    def test_store_queue_can_be_disabled(self):
        cfg = R10000Config(store_queue=False)
        slow = new_reg()
        addr_s = new_reg()
        val = new_reg()
        data = new_reg()
        trace = [
            ev(Insn(Opcode.LI, dst=data, imm=1)),
            ev(Insn(Opcode.LI, dst=slow, imm=64)),
            ev(Insn(Opcode.DIV, dst=addr_s, srcs=(slow, 2))),
            ev(Insn(Opcode.STORE, srcs=(data,), mem=MemRef(addr=addr_s, is_store=True)), 200),
            ev(Insn(Opcode.LOAD, dst=val, mem=MemRef(addr=new_reg())), 300),
        ]
        with_queue = R10000Model().time(trace).cycles
        without = R10000Model(cfg).time(trace).cycles
        assert without <= with_queue


class TestEndToEndTiming:
    SRC = """double u[128];
double w[128];
int main() {
    int i, t;
    for (i = 0; i < 128; i++) u[i] = i * 0.5;
    for (t = 0; t < 3; t++) {
        for (i = 1; i < 127; i++) {
            w[i] = u[i-1] + u[i+1];
            u[i] = w[i] * 0.5;
        }
    }
    return u[64] > 0.0;
}
"""

    def test_hli_schedule_not_slower(self):
        from repro.backend.ddg import DDGMode

        cycles = {}
        for mode in (DDGMode.GCC, DDGMode.COMBINED):
            comp = compile_source(self.SRC, "s.c", CompileOptions(mode=mode))
            res = execute(comp.rtl)
            cycles[mode] = (
                R4600Model().time(res.trace).cycles,
                R10000Model().time(res.trace).cycles,
            )
        assert cycles[DDGMode.COMBINED][0] <= cycles[DDGMode.GCC][0]
        assert cycles[DDGMode.COMBINED][1] <= cycles[DDGMode.GCC][1]

    def test_cycle_counts_deterministic(self):
        comp = compile_source(self.SRC, "s.c", CompileOptions())
        res1 = execute(comp.rtl)
        res2 = execute(comp.rtl)
        assert R4600Model().time(res1.trace).cycles == R4600Model().time(res2.trace).cycles
