"""Cache model tests."""

from repro.machine.memory import (
    Cache,
    CacheConfig,
    MemoryHierarchy,
    r4600_hierarchy,
    r10000_hierarchy,
)


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache(CacheConfig())
        assert not c.access(0x1000)
        assert c.access(0x1000)
        assert c.hits == 1 and c.misses == 1

    def test_same_line_hits(self):
        c = Cache(CacheConfig(line_bytes=32))
        c.access(0x1000)
        assert c.access(0x101F)  # same 32B line
        assert not c.access(0x1020)  # next line

    def test_direct_mapped_conflict(self):
        cfg = CacheConfig(size_bytes=1024, line_bytes=32, associativity=1)
        c = Cache(cfg)
        stride = cfg.num_sets * cfg.line_bytes
        c.access(0x0)
        c.access(stride)  # maps to the same set, evicts
        assert not c.access(0x0)

    def test_two_way_avoids_that_conflict(self):
        cfg = CacheConfig(size_bytes=1024, line_bytes=32, associativity=2)
        c = Cache(cfg)
        stride = cfg.num_sets * cfg.line_bytes
        c.access(0x0)
        c.access(stride)
        assert c.access(0x0)  # both fit in the 2-way set

    def test_lru_eviction_order(self):
        cfg = CacheConfig(size_bytes=64, line_bytes=32, associativity=2)
        c = Cache(cfg)  # one set, two ways
        c.access(0)  # A
        c.access(64)  # B (same set)
        c.access(0)  # touch A -> B is LRU
        c.access(128)  # C evicts B
        assert c.access(0)  # A still present
        assert not c.access(64)  # B evicted

    def test_miss_rate(self):
        c = Cache(CacheConfig())
        for i in range(10):
            c.access(i * 4096 * 64)
        assert c.miss_rate == 1.0

    def test_reset(self):
        c = Cache(CacheConfig())
        c.access(0)
        c.reset()
        assert c.accesses == 0
        assert not c.access(0)


class TestHierarchy:
    def test_l1_hit_is_cheap(self):
        h = MemoryHierarchy()
        h.penalty(0x2000)  # warm
        assert h.penalty(0x2000) == h.l1.config.hit_cycles

    def test_l1_miss_l2_hit(self):
        h = r10000_hierarchy()
        h.penalty(0x2000)  # warm both levels
        # force the line out of tiny... emulate by large stride sweep over L1
        stride = h.l1.config.num_sets * h.l1.config.line_bytes
        for k in range(1, h.l1.config.associativity + 2):
            h.penalty(0x2000 + k * stride)
        cost = h.penalty(0x2000)
        assert cost == h.l1.config.miss_cycles  # L2 still holds it

    def test_r4600_has_no_l2(self):
        h = r4600_hierarchy()
        assert h.l2 is None
        miss = h.penalty(0x9000)
        assert miss == h.l1.config.miss_cycles

    def test_stats_keys(self):
        h = r10000_hierarchy()
        h.penalty(0)
        stats = h.stats()
        assert "l1_miss_rate" in stats and "l2_miss_rate" in stats
