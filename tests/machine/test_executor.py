"""Functional executor tests: arithmetic semantics, control flow, externals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_source
from repro.machine.executor import ExecutionError, execute


def run(src: str, entry="main", args=(), input_text=""):
    comp = compile_source(src, "x.c", CompileOptions(schedule=False))
    return execute(comp.rtl, entry, args=args, input_text=input_text)


class TestArithmetic:
    def test_int_ops(self):
        src = "int f(int a, int b) { return (a + b) * (a - b) / 2 + a % b; }"
        assert run(src, "f", (10, 3)).ret == (13 * 7) // 2 + 1

    def test_c_division_truncates_toward_zero(self):
        assert run("int f(int a, int b) { return a / b; }", "f", (-7, 2)).ret == -3
        assert run("int f(int a, int b) { return a % b; }", "f", (-7, 2)).ret == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            run("int f(int a) { return 1 / a; }", "f", (0,))

    def test_overflow_wraps_32bit(self):
        src = "int f(int a) { return a * a; }"
        assert run(src, "f", (1 << 20,)).ret == 0  # 2^40 mod 2^32 = 0

    def test_bitwise(self):
        src = "int f(int a, int b) { return ((a & b) | (a ^ b)) << 1 >> 1; }"
        assert run(src, "f", (0b1100, 0b1010)).ret == 0b1110

    def test_comparisons(self):
        src = "int f(int a, int b) { return (a < b) * 8 + (a <= b) * 4 + (a == b) * 2 + (a != b); }"
        assert run(src, "f", (3, 3)).ret == 0b0110

    def test_float_math(self):
        src = "int f() { double x; x = 1.5 * 4.0 - 2.0; return x == 4.0; }"
        assert run(src, "f").ret == 1

    def test_int_float_conversion(self):
        src = "int f(int n) { double d; d = n; d = d / 4.0; return d * 8.0; }"
        assert run(src, "f", (3,)).ret == 6

    def test_short_circuit_and(self):
        src = "int g;\nint side() { g = 1; return 1; }\nint f() { int r; r = 0 && side(); return g * 10 + r; }"
        assert run(src, "f").ret == 0  # side() never ran

    def test_short_circuit_or(self):
        src = "int g;\nint side() { g = 1; return 0; }\nint f() { int r; r = 1 || side(); return g * 10 + r; }"
        assert run(src, "f").ret == 1

    def test_ternary(self):
        src = "int f(int c) { return c > 0 ? 10 : 20; }"
        assert run(src, "f", (5,)).ret == 10
        assert run(src, "f", (-5,)).ret == 20


class TestControlFlow:
    def test_loop_sum(self):
        src = "int f(int n) { int i, s; s = 0; for (i = 1; i <= n; i++) s += i; return s; }"
        assert run(src, "f", (100,)).ret == 5050

    def test_nested_loops(self):
        src = (
            "int f() { int i, j, c; c = 0;"
            " for (i = 0; i < 5; i++) for (j = 0; j < i; j++) c++;"
            " return c; }"
        )
        assert run(src, "f").ret == 10

    def test_break(self):
        src = "int f() { int i; for (i = 0; i < 100; i++) if (i == 7) break; return i; }"
        assert run(src, "f").ret == 7

    def test_continue(self):
        src = (
            "int f() { int i, s; s = 0;"
            " for (i = 0; i < 10; i++) { if (i % 2) continue; s += i; }"
            " return s; }"
        )
        assert run(src, "f").ret == 20

    def test_do_while_runs_once(self):
        src = "int f() { int n; n = 0; do n++; while (n < 0); return n; }"
        assert run(src, "f").ret == 1

    def test_recursion(self):
        src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }"
        assert run(src, "fib", (12,)).ret == 144

    def test_step_limit(self):
        comp = compile_source(
            "int main() { while (1) { } return 0; }", "inf.c", CompileOptions()
        )
        with pytest.raises(ExecutionError):
            execute(comp.rtl, max_steps=10_000, collect_trace=False)


class TestMemory:
    def test_array_roundtrip(self):
        src = (
            "int a[16];\n"
            "int f() { int i, s; for (i = 0; i < 16; i++) a[i] = i * i;"
            " s = 0; for (i = 0; i < 16; i++) s += a[i]; return s; }"
        )
        assert run(src, "f").ret == sum(i * i for i in range(16))

    def test_2d_array(self):
        src = (
            "int m[4][4];\n"
            "int f() { int i, j; for (i = 0; i < 4; i++) for (j = 0; j < 4; j++)"
            " m[i][j] = i * 10 + j; return m[2][3]; }"
        )
        assert run(src, "f").ret == 23

    def test_pointer_write(self):
        src = "int g;\nint f() { int *p; p = &g; *p = 77; return g; }"
        assert run(src, "f").ret == 77

    def test_pointer_into_array(self):
        src = "int a[8];\nint f() { int *p; p = a + 3; *p = 5; return a[3]; }"
        assert run(src, "f").ret == 5

    def test_struct_fields(self):
        src = (
            "struct pt { int x; int y; };\n"
            "struct pt p;\n"
            "int f() { p.x = 3; p.y = 4; return p.x * p.x + p.y * p.y; }"
        )
        assert run(src, "f").ret == 25

    def test_malloc(self):
        src = "int f() { int *p; p = malloc(8); *p = 9; *(p + 1) = 1; return *p + *(p + 1); }"
        assert run(src, "f").ret == 10

    def test_global_initializer(self):
        src = "int g = 41;\nint f() { return g + 1; }"
        assert run(src, "f").ret == 42


class TestExternals:
    def test_getchar_stream(self):
        src = "int f() { int c, n; n = 0; c = getchar(); while (c >= 0) { n++; c = getchar(); } return n; }"
        assert run(src, "f", input_text="hello").ret == 5

    def test_putchar_output(self):
        src = "int f() { putchar(104); putchar(105); return 0; }"
        res = run(src, "f")
        assert "".join(res.output) == "hi"

    def test_printf_collected(self):
        src = 'int f() { printf("x=%d", 42); return 0; }'
        res = run(src, "f")
        assert res.output == ["x=42"]

    def test_math_functions(self):
        src = "int f() { double r; r = sqrt(16.0) + fabs(-2.0) + pow(2.0, 3.0); return r; }"
        assert run(src, "f").ret == 14

    def test_exit(self):
        src = "int f() { exit(3); return 0; }"
        assert run(src, "f").ret == 3

    def test_rand_deterministic(self):
        src = "int f() { return rand() % 1000; }"
        assert run(src, "f").ret == run(src, "f").ret


class TestTrace:
    def test_trace_collected(self):
        src = "int g;\nint f() { g = 1; return g; }"
        comp = compile_source(src, "t.c", CompileOptions(schedule=False))
        res = execute(comp.rtl, "f")
        assert res.trace
        addrs = [ev.addr for ev in res.trace if ev.insn.mem is not None]
        assert len(set(addrs)) == 1  # both refs hit g's address

    def test_trace_disabled(self):
        src = "int f() { return 1; }"
        comp = compile_source(src, "t.c", CompileOptions(schedule=False))
        res = execute(comp.rtl, "f", collect_trace=False)
        assert res.trace == []


class TestPropertySemantics:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(-1000, 1000), st.integers(1, 100))
    def test_arith_identity(self, a, b):
        src = "int f(int a, int b) { return (a / b) * b + a % b; }"
        assert run(src, "f", (a, b)).ret == a

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=20))
    def test_array_sum_matches_python(self, values):
        n = len(values)
        decls = "int a[32];\n"
        fills = "".join(f"a[{i}] = {v}; " for i, v in enumerate(values))
        src = f"{decls}int f() {{ int i, s; {fills} s = 0; for (i = 0; i < {n}; i++) s += a[i]; return s; }}"
        assert run(src, "f").ret == sum(values)
