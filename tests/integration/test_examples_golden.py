"""Golden-output smoke tests for every ``examples/*.py`` script.

``test_driver_and_examples.py`` asserts the examples *run*; these tests
pin the load-bearing lines of their output so a regression that keeps an
example alive but silently changes its story (a vanished table, a
dependence reduction dropping to zero, a renamed section) still fails.

Each script runs in a temporary working directory so that nothing an
example writes can litter the repository root.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = ROOT / "examples"

#: script -> substrings that must appear in its stdout
GOLDEN = {
    "quickstart.py": [
        "=== 1. Compile with the Figure 5 combined dependence mode ===",
        "HLI file for sweep.c",
    ],
    "paper_figure2.py": [
        "Line table (item ID, access type per source line):",
        "Region 1 (procedure, lines 5..14):",
    ],
    "inspect_hli.py": [
        "wrote program.hli:",
        "HLI entry: unit 'tally'",
        "Region 2 [LOOP]",
    ],
    "stencil_scheduling.py": [
        "2-D Jacobi relaxation, compiled under three dependence modes",
        "dependence-edge reduction: 100%",
        "mode=gcc",
        "mode=combined",
    ],
    "unroll_and_maintain.py": [
        "--- HLI before unrolling ---",
        "unrolled 2 loop(s), cloned 15 items",
        "--- scheduling payoff on the R10000 model ---",
    ],
}


def _run_example(script: str, cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=cwd,
        env=env,
    )


@pytest.mark.parametrize("script", sorted(GOLDEN))
def test_example_golden_output(script, tmp_path):
    result = _run_example(script, tmp_path)
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in GOLDEN[script]:
        assert needle in result.stdout, (
            f"{script}: expected line {needle!r} missing from output:\n"
            f"{result.stdout[:3000]}"
        )


def test_every_example_has_golden_lines():
    """Adding a new example without pinning its output fails here."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(GOLDEN), (
        "examples/ and the GOLDEN table disagree; add key output lines "
        f"for: {sorted(scripts ^ set(GOLDEN))}"
    )
