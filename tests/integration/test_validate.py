"""Artifact-validation driver tests (quick mode: no speedup sweep)."""

import json

import repro.driver.validate as validate_mod
from repro.driver.validate import Claim, ValidationReport, main, validate


def test_quick_validation(tmp_path):
    out = tmp_path / "RESULTS.json"
    report = validate(include_speedups=False, out_path=str(out))
    assert report.all_passed, [c.name for c in report.claims if not c.passed]
    payload = json.loads(out.read_text())
    assert len(payload["table1"]) == 14
    assert len(payload["table2"]) == 14
    assert payload["speedups"] == []
    names = {c["name"] for c in payload["claims"]}
    assert {
        "t1_fp_denser",
        "t2_substantial_reduction",
        "mapping_complete",
        "hli_lint_clean",
    } <= names
    # every claim carries its own wall time; phases carry theirs
    assert all(c["seconds"] >= 0.0 for c in payload["claims"])
    assert {"tables", "claims", "lint"} <= set(payload["phase_seconds"])
    assert payload["elapsed_seconds"] >= 0.0


def test_trace_out_writes_chrome_trace(tmp_path):
    out = tmp_path / "RESULTS.json"
    trace_path = tmp_path / "validate_trace.json"
    validate(include_speedups=False, out_path=str(out), trace_out=str(trace_path))
    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    assert len(events) > 0
    names = {e["name"] for e in events}
    assert "driver.validate" in names
    assert "validate.tables" in names


class TestExitCode:
    """`python -m repro.driver.validate` is a CI gate: non-zero on failure."""

    def _stub(self, monkeypatch, passed):
        report = ValidationReport()
        report.claims.append(Claim("stub", "stubbed claim", passed))
        monkeypatch.setattr(validate_mod, "validate", lambda **kw: report)

    def test_main_nonzero_when_claim_fails(self, monkeypatch):
        self._stub(monkeypatch, passed=False)
        assert main(["--quick"]) == 1

    def test_main_zero_when_all_pass(self, monkeypatch):
        self._stub(monkeypatch, passed=True)
        assert main(["--quick", "--no-lint"]) == 0
