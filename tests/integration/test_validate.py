"""Artifact-validation driver tests (quick mode: no speedup sweep)."""

import json

from repro.driver.validate import validate


def test_quick_validation(tmp_path):
    out = tmp_path / "RESULTS.json"
    report = validate(include_speedups=False, out_path=str(out))
    assert report.all_passed, [c.name for c in report.claims if not c.passed]
    payload = json.loads(out.read_text())
    assert len(payload["table1"]) == 14
    assert len(payload["table2"]) == 14
    assert payload["speedups"] == []
    names = {c["name"] for c in payload["claims"]}
    assert {"t1_fp_denser", "t2_substantial_reduction", "mapping_complete"} <= names
