"""Driver/report CLI and example-script integration tests."""

import io
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

from repro.driver.report import report_table1, report_table2
from repro.driver.timing import time_benchmark
from repro.workloads.suite import by_name

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestReports:
    def test_table1_report_format(self):
        out = io.StringIO()
        report_table1(out)
        text = out.getvalue()
        assert "Table 1" in text
        assert "101.tomcatv" in text
        assert "fp mean" in text

    def test_table2_report_format(self):
        out = io.StringIO()
        report_table2(out)
        text = out.getvalue()
        assert "Table 2" in text
        for b in ("wc", "102.swim", "141.apsi"):
            assert b in text
        assert "int mean" in text

    def test_speedups_single_bench(self):
        from repro.driver.report import report_speedups

        out = io.StringIO()
        report_speedups(out, benches=[by_name("129.compress")])
        text = out.getvalue()
        assert "129.compress" in text
        assert "geomean" in text

    def test_cli_main(self, capsys):
        from repro.driver.report import main

        rc = main(["table1"])
        assert rc == 0
        assert "Table 1" in capsys.readouterr().out


class TestTimingDriver:
    def test_time_benchmark_structure(self):
        t = time_benchmark(by_name("129.compress"))
        assert t.results_match
        assert t.cycles_r4600_gcc > 0
        assert t.cycles_r10000_gcc > 0
        assert 0.5 < t.speedup_r4600 < 2.0
        assert 0.5 < t.speedup_r10000 < 2.0


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "paper_figure2.py",
        "inspect_hli.py",
        "stencil_scheduling.py",
        "unroll_and_maintain.py",
    ],
)
def test_example_runs(script):
    """Every example script must run to completion."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print something"
