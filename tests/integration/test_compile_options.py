"""CompileOptions behaviour matrix."""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.machine.executor import execute
from repro.machine.latencies import r4600_latency, r10000_latency

SRC = """double u[128];
double w[128];
double acc;
int main() {
    int i;
    for (i = 1; i < 127; i++) {
        w[i] = u[i-1] + u[i+1];
        acc = acc + w[i] * 0.5;
    }
    return acc >= 0.0;
}
"""


class TestScheduleToggle:
    def test_schedule_false_keeps_original_order(self):
        a = compile_source(SRC, "o.c", CompileOptions(schedule=False))
        b = compile_source(SRC, "o.c", CompileOptions(schedule=False))
        assert [i.op for i in a.rtl.functions["main"].insns] == [
            i.op for i in b.rtl.functions["main"].insns
        ]
        assert a.dep_stats == {}

    def test_schedule_true_populates_stats(self):
        comp = compile_source(SRC, "o.c", CompileOptions(schedule=True))
        assert comp.total_dep_stats().total_tests > 0

    def test_latency_function_changes_priorities(self):
        a = compile_source(
            SRC, "o.c", CompileOptions(mode=DDGMode.COMBINED, latency=r4600_latency)
        )
        b = compile_source(
            SRC, "o.c", CompileOptions(mode=DDGMode.COMBINED, latency=r10000_latency)
        )
        # same program, same dependences — stats agree even if orders differ
        sa, sb = a.total_dep_stats(), b.total_dep_stats()
        assert (sa.total_tests, sa.combined_yes) == (sb.total_tests, sb.combined_yes)
        # and both execute correctly
        assert (
            execute(a.rtl, collect_trace=False).ret
            == execute(b.rtl, collect_trace=False).ret
        )


class TestOptimizationFlags:
    @pytest.mark.parametrize(
        "opts",
        [
            CompileOptions(cse=True),
            CompileOptions(licm=True),
            CompileOptions(unroll=2),
            CompileOptions(cse=True, licm=True, unroll=2),
        ],
        ids=["cse", "licm", "unroll", "all"],
    )
    def test_optimized_results_match_baseline(self, opts):
        base = execute(
            compile_source(SRC, "o.c", CompileOptions()).rtl, collect_trace=False
        )
        opt = execute(compile_source(SRC, "o.c", opts).rtl, collect_trace=False)
        assert opt.ret == base.ret

    def test_opt_stats_attached(self):
        comp = compile_source(SRC, "o.c", CompileOptions(cse=True, unroll=2))
        assert hasattr(comp, "opt_stats")
        assert comp.opt_stats.unroll.loops_unrolled >= 1

    def test_gcc_mode_passes_run_without_hli(self):
        comp = compile_source(
            SRC, "o.c", CompileOptions(mode=DDGMode.GCC, cse=True, licm=True)
        )
        res = execute(comp.rtl, collect_trace=False)
        base = execute(compile_source(SRC, "o.c", CompileOptions()).rtl, collect_trace=False)
        assert res.ret == base.ret


class TestCompilationObject:
    def test_artifacts_present(self):
        comp = compile_source(SRC, "o.c", CompileOptions())
        assert comp.hli.entries
        assert comp.frontend.units
        assert comp.rtl.functions
        assert comp.queries
        assert comp.map_stats
        assert comp.options is not None

    def test_total_dep_stats_sums_functions(self):
        src = SRC + "\nint side() { return u[3] > 0.0; }\n"
        comp = compile_source(src, "o.c", CompileOptions())
        total = comp.total_dep_stats()
        assert total.total_tests == sum(
            s.total_tests for s in comp.dep_stats.values()
        )
