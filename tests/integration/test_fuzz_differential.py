"""Differential fuzzing: random structured programs through four paths.

Each seed produces a terminating, fault-free MiniC program.  The program
is run through (1) the reference interpreter, (2) compile+execute in GCC
mode, (3) compile+execute in combined-HLI mode, and (4) compile with CSE
+ LICM + unrolling.  All four results must be identical — any divergence
exposes a bug somewhere in the lexer→scheduler chain or the analyses.
"""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.frontend import parse_and_check
from repro.frontend.interp import interpret
from repro.machine.executor import execute
from repro.workloads.generators import random_program

SEEDS = list(range(40))


@pytest.mark.parametrize("seed", SEEDS)
def test_four_way_agreement(seed):
    src = random_program(seed)
    prog, _ = parse_and_check(src)
    ref = interpret(prog)
    results = {"interp": ref.ret}
    for label, opts in (
        ("gcc", CompileOptions(mode=DDGMode.GCC)),
        ("hli", CompileOptions(mode=DDGMode.COMBINED)),
        ("opt", CompileOptions(mode=DDGMode.COMBINED, cse=True, licm=True, unroll=2)),
    ):
        comp = compile_source(src, f"fuzz{seed}.c", opts)
        res = execute(comp.rtl, collect_trace=False)
        results[label] = res.ret
    assert len(set(results.values())) == 1, f"seed {seed}: {results}\n{src}"


def test_generator_determinism():
    assert random_program(7) == random_program(7)
    assert random_program(7) != random_program(8)


def test_generated_programs_have_memory_traffic():
    """The fuzzer must exercise the interesting paths (array stores)."""
    hits = sum("ga[" in random_program(s) for s in range(10))
    assert hits >= 8
