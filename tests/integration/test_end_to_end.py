"""End-to-end integration over the full benchmark suite.

These tests are the reproduction's acceptance criteria:

* every benchmark compiles through the full pipeline in every mode;
* every memory reference maps to an HLI item;
* all three dependence modes produce identical observable behaviour
  (HLI-guided scheduling is sound);
* the headline shape results of Tables 1/2 hold.
"""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.hli.sizes import size_report
from repro.machine.executor import execute
from repro.workloads.suite import (
    BENCHMARKS,
    by_name,
    float_benchmarks,
    integer_benchmarks,
)


@pytest.fixture(scope="module")
def suite_runs():
    """Compile + run every benchmark under gcc and combined modes once."""
    out = {}
    for b in BENCHMARKS:
        per_mode = {}
        for mode in (DDGMode.GCC, DDGMode.COMBINED):
            comp = compile_source(b.source, b.name, CompileOptions(mode=mode))
            res = execute(
                comp.rtl, b.entry, input_text=b.input_text, collect_trace=False
            )
            per_mode[mode] = (comp, res)
        out[b.name] = per_mode
    return out


class TestSuiteCompiles:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_compiles_and_runs(self, suite_runs, bench):
        comp, res = suite_runs[bench.name][DDGMode.COMBINED]
        assert res.steps > 1000, "benchmark should do real work"
        assert comp.hli.entries, "HLI produced"

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_mapping_complete(self, suite_runs, bench):
        comp, _ = suite_runs[bench.name][DDGMode.COMBINED]
        for name, stats in comp.map_stats.items():
            assert stats.unmapped == 0, f"{name}: lines {stats.mismatched_lines}"


class TestSchedulingSoundness:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_modes_agree(self, suite_runs, bench):
        gcc = suite_runs[bench.name][DDGMode.GCC][1]
        hli = suite_runs[bench.name][DDGMode.COMBINED][1]
        assert gcc.ret == hli.ret
        assert gcc.output == hli.output


class TestTable2Shape:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_combined_never_worse_than_gcc(self, suite_runs, bench):
        s = suite_runs[bench.name][DDGMode.COMBINED][0].total_dep_stats()
        assert s.combined_yes <= s.gcc_yes
        assert s.combined_yes <= s.hli_yes

    def test_mean_reduction_substantial(self, suite_runs):
        """Paper headline: ~48% int / ~54% fp edge reduction."""
        reductions = [
            suite_runs[b.name][DDGMode.COMBINED][0].total_dep_stats().reduction
            for b in BENCHMARKS
        ]
        assert sum(reductions) / len(reductions) > 0.40

    def test_fp_reduces_more_than_int(self, suite_runs):
        def mean(benches):
            vals = [
                suite_runs[b.name][DDGMode.COMBINED][0].total_dep_stats().reduction
                for b in benches
            ]
            return sum(vals) / len(vals)

        assert mean(float_benchmarks()) > mean(integer_benchmarks())

    def test_tomcatv_like_reduction_over_80pct(self, suite_runs):
        s = suite_runs["101.tomcatv"][DDGMode.COMBINED][0].total_dep_stats()
        assert s.reduction > 0.80

    def test_fp_more_tests_per_line_than_int(self, suite_runs):
        def mean_tpl(benches):
            vals = []
            for b in benches:
                comp = suite_runs[b.name][DDGMode.COMBINED][0]
                s = comp.total_dep_stats()
                rep = size_report(comp.hli, b.source)
                vals.append(s.total_tests / rep.code_lines)
            return sum(vals) / len(vals)

        assert mean_tpl(float_benchmarks()) > mean_tpl(integer_benchmarks())


class TestHLIQueryIntegration:
    def test_queries_built_for_all_units(self, suite_runs):
        comp, _ = suite_runs["034.mdljdp2"][DDGMode.COMBINED]
        assert set(comp.queries) == set(comp.rtl.functions)

    def test_dep_stats_per_function(self, suite_runs):
        comp, _ = suite_runs["034.mdljdp2"][DDGMode.COMBINED]
        assert "forces" in comp.dep_stats
        assert comp.dep_stats["forces"].total_tests > 0
