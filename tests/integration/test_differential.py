"""Differential testing: reference interpreter vs compile+execute.

Two independent implementations of MiniC semantics must agree: the
tree-walking :mod:`repro.frontend.interp` and the full pipeline
(lowering → RTL → functional executor).  Any divergence is a bug in one
of them — this has the same role as csmith-style differential testing
for real compilers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.frontend import parse_and_check
from repro.frontend.interp import interpret
from repro.machine.executor import execute
from repro.workloads.generators import (
    ReductionParams,
    StencilParams,
    random_affine_loop,
    reduction_program,
    stencil_program,
)
from repro.workloads.suite import BENCHMARKS


def both(src: str, input_text: str = "", entry: str = "main"):
    prog, _ = parse_and_check(src)
    ref = interpret(prog, entry, input_text=input_text)
    comp = compile_source(src, "diff.c", CompileOptions(mode=DDGMode.COMBINED))
    mach = execute(comp.rtl, entry, input_text=input_text, collect_trace=False)
    return ref, mach


class TestSuiteDifferential:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_benchmark_agrees(self, bench):
        ref, mach = both(bench.source, bench.input_text, bench.entry)
        assert ref.ret == mach.ret, f"interp={ref.ret} machine={mach.ret}"
        assert ref.output == mach.output


class TestGeneratedDifferential:
    @pytest.mark.parametrize("arrays,size", [(2, 24), (3, 40), (5, 16)])
    def test_stencils_agree(self, arrays, size):
        src = stencil_program(StencilParams(arrays=arrays, size=size, iters=2))
        ref, mach = both(src)
        assert ref.ret == mach.ret

    @pytest.mark.parametrize("stride", [1, 2, 3])
    def test_reductions_agree(self, stride):
        src = reduction_program(ReductionParams(arrays=3, size=30, stride=stride))
        ref, mach = both(src)
        assert ref.ret == mach.ret

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_affine_agree(self, seed):
        src, expected = random_affine_loop(seed)
        ref, mach = both(src)
        assert ref.ret == mach.ret == expected[16]


class TestTrickyConstructs:
    CASES = {
        "compound_chain": """int a[4];
int main() { a[0] = 1; a[0] += 2; a[0] *= 3; a[0] -= 4; a[0] /= 2; return a[0]; }""",
        "postincr_in_subscript": """int a[8];
int main() { int i; i = 0; a[i++] = 5; a[i++] = 6; return a[0] * 10 + a[1] + i; }""",
        "nested_ternary": """int main() {
    int x; x = 7;
    return x > 5 ? (x > 6 ? 1 : 2) : (x > 3 ? 3 : 4);
}""",
        "shortcircuit_side_effects": """int g;
int bump() { g = g + 1; return 1; }
int main() { int r; g = 0; r = (0 && bump()) + (1 && bump()) + (1 || bump()); return g * 10 + r; }""",
        "pointer_walk": """int a[10];
int main() {
    int *p; int s; int i;
    for (i = 0; i < 10; i++) a[i] = i;
    s = 0;
    p = a;
    for (i = 0; i < 10; i++) { s = s + *p; p++; }
    return s;
}""",
        "struct_mix": """struct vec { int x; int y; double w; };
struct vec v;
int main() { v.x = 3; v.y = 4; v.w = 1.5; return v.x * v.y + (v.w * 2.0); }""",
        "recursion_ackermann_ish": """int f(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return f(m - 1, 1);
    return f(m - 1, f(m, n - 1));
}
int main() { return f(2, 3); }""",
        "do_while_break": """int main() {
    int i, s; i = 0; s = 0;
    do { i++; if (i == 5) break; s = s + i; } while (i < 100);
    return s * 100 + i;
}""",
        "negative_modulo": """int main() { return (-17 % 5) + 100; }""",
        "float_compare_chain": """int main() {
    double a, b; a = 0.1 + 0.2; b = 0.3;
    return (a > b) * 2 + (a < b);
}""",
    }

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_case(self, name):
        ref, mach = both(self.CASES[name])
        assert ref.ret == mach.ret, f"{name}: interp={ref.ret} machine={mach.ret}"
