"""Dynamic soundness of HLI equivalence answers.

The strongest possible check on `get_equiv_acc`: execute the program and
verify, for every *basic-block execution instance*, that two memory
references the HLI declared independent (NONE) never actually touched
the same address in that instance.  A single counter-example would mean
the scheduler could have produced wrong code.

(The converse — DEFINITE pairs always matching — is also checked when
both references execute in the instance.)
"""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.rtl import BRANCH_OPS, Opcode
from repro.hli.query import EquivAcc, HLIQuery
from repro.machine.executor import execute
from repro.workloads.generators import random_program
from repro.workloads.suite import by_name

#: benchmarks with small enough traces for the quadratic window check
CANDIDATES = ["wc", "008.espresso", "048.ora", "052.alvinn", "103.su2cor"]


def block_instances(trace):
    """Split a dynamic trace into basic-block execution windows."""
    window = []
    for ev in trace:
        op = ev.insn.op
        if op is Opcode.LABEL:
            if window:
                yield window
            window = []
            continue
        if op in BRANCH_OPS or op is Opcode.CALL:
            window.append(ev)
            yield window
            window = []
            continue
        window.append(ev)
    if window:
        yield window


def check_program(comp, input_text: str = "", max_windows: int = 50_000):
    res = execute(comp.rtl, input_text=input_text)
    queries = comp.queries
    none_checked = definite_checked = 0
    windows = 0
    # item -> unit query is per function; find via insn's owning function
    insn_unit = {}
    for name, fn in comp.rtl.functions.items():
        for insn in fn.insns:
            insn_unit[insn.uid] = name
    for window in block_instances(res.trace):
        windows += 1
        if windows > max_windows:
            break
        mems = [
            ev
            for ev in window
            if ev.insn.mem is not None and ev.addr is not None
        ]
        for i in range(len(mems)):
            for j in range(i + 1, len(mems)):
                a, b = mems[i], mems[j]
                if not (a.insn.mem.is_store or b.insn.mem.is_store):
                    continue
                ia, ib = a.insn.hli_item, b.insn.hli_item
                if ia is None or ib is None:
                    continue
                unit = insn_unit.get(a.insn.uid)
                if unit is None or insn_unit.get(b.insn.uid) != unit:
                    continue
                q = queries[unit]
                verdict = q.get_equiv_acc(ia, ib)
                if verdict is EquivAcc.NONE:
                    none_checked += 1
                    assert a.addr != b.addr, (
                        f"UNSOUND: items {ia},{ib} declared NONE but both "
                        f"touched address {a.addr:#x} "
                        f"({a.insn} / {b.insn})"
                    )
                elif verdict is EquivAcc.DEFINITE:
                    definite_checked += 1
                    assert a.addr == b.addr, (
                        f"items {ia},{ib} declared DEFINITE but addresses "
                        f"differ: {a.addr:#x} vs {b.addr:#x}"
                    )
    return none_checked, definite_checked


class TestDynamicSoundness:
    @pytest.mark.parametrize("name", CANDIDATES)
    def test_benchmark(self, name):
        bench = by_name(name)
        comp = compile_source(bench.source, bench.name, CompileOptions())
        none_n, def_n = check_program(comp, bench.input_text)
        # the check must actually exercise NONE verdicts to mean anything
        assert none_n + def_n > 0

    @pytest.mark.parametrize("seed", range(12))
    def test_fuzzed_programs(self, seed):
        src = random_program(seed)
        comp = compile_source(src, f"dyn{seed}.c", CompileOptions())
        check_program(comp)

    def test_stencil_exercises_none_heavily(self):
        src = """double u[128];
double w[128];
int main() {
    int i;
    for (i = 1; i < 127; i++) {
        w[i] = u[i-1] + u[i+1];
        u[i] = w[i] * 0.5;
    }
    return 0;
}
"""
        comp = compile_source(src, "dyn_st.c", CompileOptions())
        none_n, _ = check_program(comp)
        assert none_n > 100  # plenty of independent pairs verified
