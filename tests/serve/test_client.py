"""Client-side tests: RemoteSession fallback, CLIs, repro-stats ingestion."""

from __future__ import annotations

import json

import pytest

from repro.driver.compile import Compilation, CompileOptions
from repro.machine.executor import execute
from repro.obs import metrics as _metrics
from repro.serve.cli import client_main
from repro.serve.client import RemoteSession, ServeClient, parse_server_spec
from tests.conftest import FIG2_SOURCE, SIMPLE_MAIN

#: A port from the TCP test range nothing listens on (RFC 5737 spirit).
DEAD_SPEC = "127.0.0.1:1"


class TestParseServerSpec:
    def test_host_and_port(self):
        assert parse_server_spec("example.com:9000") == ("example.com", 9000)

    def test_bare_host_defaults_port(self):
        from repro.serve.protocol import DEFAULT_PORT

        assert parse_server_spec("example.com") == ("example.com", DEFAULT_PORT)

    def test_bare_port_defaults_host(self):
        assert parse_server_spec(":9000") == ("127.0.0.1", 9000)

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_server_spec("host:notaport")


class TestCompileObject:
    def test_object_round_trip_executes(self, server):
        from repro.driver.compile import compile_source

        host, port = server.address
        with ServeClient(host, port) as c:
            comp = c.compile_object(SIMPLE_MAIN, "simple.c")
        assert isinstance(comp, Compilation)
        want = execute(compile_source(SIMPLE_MAIN, "simple.c").rtl, collect_trace=False)
        got = execute(comp.rtl, collect_trace=False)
        assert (got.ret, got.output) == (want.ret, want.output)

    def test_wire_carries_no_pickle(self, server, monkeypatch):
        # the object wire is binfmt, end to end: a client must never
        # deserialize daemon output with pickle (that would hand the
        # daemon arbitrary code execution in the client).  Poison
        # pickle.loads process-wide — the server thread shares it, so
        # this proves *neither* side unpickles during the round-trip.
        import pickle

        def boom(*a, **k):  # pragma: no cover - raising is the assertion
            raise AssertionError("pickle.loads called on the serve wire")

        monkeypatch.setattr(pickle, "loads", boom)
        monkeypatch.setattr(pickle, "load", boom)
        host, port = server.address
        with ServeClient(host, port) as c:
            comp = c.compile_object(SIMPLE_MAIN, "simple.c")
        assert isinstance(comp, Compilation)
        assert execute(comp.rtl, collect_trace=False).ret is not None

    def test_undecodable_object_payload_raises_server_error(self, server, monkeypatch):
        import base64

        from repro.serve.client import ServerError

        host, port = server.address
        with ServeClient(host, port) as c:
            real = c.compile

            def tamper(*args, **kwargs):
                result = real(*args, **kwargs)
                if "object_b64" in result:
                    result["object_b64"] = base64.b64encode(b"garbage").decode("ascii")
                return result

            monkeypatch.setattr(c, "compile", tamper)
            with pytest.raises(ServerError, match="undecodable object payload"):
                c.compile_object(SIMPLE_MAIN, "simple.c")


class TestRemoteSession:
    def test_routes_remotely_and_counts_stats(self, server):
        host, port = server.address
        sess = RemoteSession(f"{host}:{port}")
        c1 = sess.compile(SIMPLE_MAIN, "simple.c")
        c2 = sess.compile(SIMPLE_MAIN, "simple.c")
        assert sess.using_remote
        assert sess.remote_compiles == 2 and sess.fallback_compiles == 0
        assert (c1.cache_state, c2.cache_state) == ("cold", "memory")
        assert sess.stats.misses == 1 and sess.stats.hits_memory == 1
        # the daemon's shared session did the work
        assert server.server.session.stats.misses == 1

    def test_falls_back_when_unreachable(self):
        sess = RemoteSession(DEAD_SPEC)
        comp = sess.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "cold"
        assert not sess.using_remote
        assert sess.fallback_compiles == 1 and sess.remote_compiles == 0
        # subsequent compiles stay in-process (no reconnect storms)
        sess.compile(FIG2_SOURCE, "fig2.c")
        assert sess.fallback_compiles == 2

    def test_kwargs_bypass_the_wire(self, server):
        host, port = server.address
        sess = RemoteSession(f"{host}:{port}")
        comp = sess.compile(SIMPLE_MAIN, "simple.c", extra_salt="wp-fingerprint")
        assert comp.cache_state == "cold"
        assert sess.fallback_compiles == 1 and sess.remote_compiles == 0
        assert sess.using_remote  # the daemon was not marked dead

    def test_options_cross_the_wire(self, server):
        host, port = server.address
        sess = RemoteSession(f"{host}:{port}")
        comp = sess.compile(FIG2_SOURCE, "fig2.c", CompileOptions(cse=True, unroll=2))
        assert comp.options.cse is True
        assert comp.options.unroll == 2


class TestClientCli:
    def test_compile_json_output(self, server, tmp_path, capsys):
        host, port = server.address
        src = tmp_path / "prog.c"
        src.write_text(SIMPLE_MAIN)
        code = client_main(["--server", f"{host}:{port}", "compile", str(src), "--json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["result"]["cache_state"] == "cold"
        assert doc["result"]["functions"] == ["main"]

    def test_lint_clean_exits_zero(self, server, tmp_path, capsys):
        host, port = server.address
        src = tmp_path / "prog.c"
        src.write_text(FIG2_SOURCE)
        assert client_main(["--server", f"{host}:{port}", "lint", str(src)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_ping_and_stats(self, server, capsys):
        host, port = server.address
        assert client_main(["--server", f"{host}:{port}", "ping"]) == 0
        assert client_main(["--server", f"{host}:{port}", "stats"]) == 0
        out = capsys.readouterr().out
        assert "pong" in out
        assert '"counters"' in out

    def test_unreachable_exits_three(self, capsys):
        assert client_main(["--server", DEAD_SPEC, "ping"]) == 3


class TestReproStatsIngestion:
    def _warm(self, server):
        host, port = server.address
        with ServeClient(host, port) as c:
            c.compile(SIMPLE_MAIN, "simple.c")
            c.compile(SIMPLE_MAIN, "simple.c")
        return f"{host}:{port}"

    def test_stats_format_embeds_server_payload(self, server, tmp_path, capsys):
        from repro.obs.cli import main as stats_main

        spec = self._warm(server)
        out = tmp_path / "stats.json"
        code = stats_main(["--server", spec, "--format", "stats", "--out", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["server"]["counters"]["requests"]["compile"] == 2
        assert doc["server"]["session_cache"]["hits_memory"] == 1
        # ingested into the metrics registry too
        assert doc["counters"]["serve.requests.compile"] == 2
        # zero-valued counters are skipped by metrics.add (tidy exports)
        assert "serve.coalesced_hits" not in doc["counters"]
        assert doc["gauges"]["serve.queue_depth"] == 0.0

    def test_chrome_format_gains_counter_events(self, server, tmp_path):
        from repro.obs.cli import main as stats_main

        spec = self._warm(server)
        out = tmp_path / "trace.json"
        assert stats_main(["--server", spec, "--format", "chrome", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        counter_events = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counter_events}
        assert "serve.queue_depth" in names
        assert "serve.counters.pipeline_runs" in names

    def test_text_format_has_serve_section(self, server, capsys):
        from repro.obs.cli import main as stats_main

        spec = self._warm(server)
        assert stats_main(["--server", spec, "--format", "text"]) == 0
        out = capsys.readouterr().out
        assert f"repro-serve @ {spec}" in out
        assert "coalescing" in out
        assert "hits_memory=1" in out

    def test_unreachable_server_errors_cleanly(self, capsys):
        from repro.obs.cli import main as stats_main

        assert stats_main(["--server", DEAD_SPEC, "--format", "text"]) == 2
        assert "error" in capsys.readouterr().err

    def test_ingest_is_pure_registry_translation(self):
        from repro.obs.cli import ingest_server_stats

        _metrics.reset()
        _metrics.enable()
        try:
            ingest_server_stats(
                {
                    "uptime_seconds": 12.5,
                    "queue_depth": 3,
                    "inflight": 2,
                    "draining": False,
                    "counters": {
                        "requests": {"compile": 9, "lint": 1},
                        "rejected": 4,
                        "coalesced_hits": 5,
                    },
                    "session_cache": {"hits_memory": 7, "misses": 2},
                    "latency_ms": {"compile": {"count": 9, "mean": 5.0, "p50": 4.0,
                                               "p95": 11.0, "max": 12.0}},
                }
            )
            counters = _metrics.counters()
            gauges = _metrics.gauges()
            assert counters["serve.requests.compile"] == 9
            assert counters["serve.rejected"] == 4
            assert counters["serve.session.hits_memory"] == 7
            assert counters["serve.latency_ms.compile.count"] == 9
            assert gauges["serve.queue_depth"] == 3.0
            assert gauges["serve.latency_ms.compile.p95"] == 11.0
        finally:
            _metrics.disable()
            _metrics.reset()
