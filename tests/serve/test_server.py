"""End-to-end daemon tests over real sockets.

Covers the ISSUE's protocol edge cases — oversized frames, malformed
JSON, client disconnect mid-request — plus coalescing correctness,
admission rejection, per-request timeout, and graceful drain.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServerError, ServerRejected
from repro.serve.protocol import encode_frame, recv_frame, send_frame
from tests.conftest import FIG2_SOURCE, SIMPLE_MAIN
from tests.serve.conftest import SlowSession


def _client(st, **kwargs) -> ServeClient:
    host, port = st.address
    kwargs.setdefault("timeout", 30.0)
    return ServeClient(host, port, **kwargs)


def _wait_until(predicate, timeout=10.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(f"timed out waiting for {what}")


class TestBasicOps:
    def test_ping(self, server):
        with _client(server) as c:
            assert c.ping()

    def test_compile_summary_and_warm_hit(self, server):
        with _client(server) as c:
            cold = c.compile(SIMPLE_MAIN, "simple.c")
            warm = c.compile(SIMPLE_MAIN, "simple.c")
        assert cold["cache_state"] == "cold"
        assert warm["cache_state"] == "memory"
        assert cold["rtl_sha256"] == warm["rtl_sha256"]
        assert cold["functions"] == ["main"]
        assert cold["insns"] > 0

    def test_warm_hits_cross_connections(self, server):
        with _client(server) as c:
            c.compile(FIG2_SOURCE, "fig2.c")
        with _client(server) as c:
            assert c.compile(FIG2_SOURCE, "fig2.c")["cache_state"] == "memory"

    def test_lint_clean_program(self, server):
        with _client(server) as c:
            result = c.lint(FIG2_SOURCE, "fig2.c")
        assert result["lint"]["clean"] is True
        assert result["lint"]["findings"] == []
        assert sum(result["lint"]["claims_checked"].values()) > 0

    def test_compile_wp_partitioned_and_coherent(self, server):
        units = [
            ("u0.c", "int inc(int x) { return x + 1; }"),
            ("u1.c", "int twice(int x) { return x + x; }"),
            ("main.c", "int inc(int x); int twice(int x);"
                       " int main() { return twice(inc(3)); }"),
        ]
        with _client(server) as c:
            serial = c.compile_wp(units, jobs=1, partition="none")
            part = c.compile_wp(units, jobs=2, partition="balanced")
        assert serial["image_functions"] == part["image_functions"]
        # partitioning must not change the alpha-equivalent image
        assert serial["image_sha256"] == part["image_sha256"]
        assert serial["dep_stats"] == part["dep_stats"]
        assert serial["partition"]["partitions"] == 1
        assert part["partition"]["mode"] == "balanced"
        assert part["partition"]["partitions"] == 2
        assert part["partition"]["units"] == 3
        assert serial["link_diagnostics"] == 0
        assert serial["image_diagnostics"] == 0

    def test_compile_wp_rejects_bad_shapes(self, server):
        with _client(server) as c:
            with pytest.raises(ServerError):
                c.request("compile-wp", units=[], jobs=1, partition="none")
            with pytest.raises(ServerError):
                c.request(
                    "compile-wp",
                    units=[["u0.c", "int main() { return 0; }"]],
                    jobs=1,
                    partition="zigzag",
                )

    def test_stats_endpoint_shape(self, server):
        with _client(server) as c:
            c.compile(SIMPLE_MAIN, "simple.c")
            stats = c.stats()
        assert stats["counters"]["requests"]["compile"] == 1
        assert stats["counters"]["pipeline_runs"] == 1
        assert stats["session_cache"]["misses"] == 1
        assert stats["latency_ms"]["compile"]["count"] == 1
        assert stats["queue_depth"] == 0 and stats["inflight"] == 0

    def test_compile_error_reported_not_fatal(self, server):
        with _client(server) as c:
            with pytest.raises(ServerError) as exc:
                c.compile("int main( {", "broken.c")
            assert exc.value.code == "compile-error"
            assert c.ping()  # connection and server both survive

    def test_unknown_op_is_bad_request(self, server):
        with _client(server) as c:
            with pytest.raises(ServerError) as exc:
                c.request("transmogrify")
            assert exc.value.code == "bad-request"

    def test_bad_options_rejected_before_admission(self, server):
        with _client(server) as c:
            with pytest.raises(ServerError) as exc:
                c.request(
                    "compile", source="int main(){}", filename="a.c",
                    options={"mode": "quantum"},
                )
            assert exc.value.code == "bad-request"
        assert server.server.limiter.admitted == 0


class TestProtocolDefects:
    def test_oversized_frame_gets_error_then_close(self, make_server):
        st = make_server(max_frame_bytes=1024)
        host, port = st.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(struct.pack(">I", 1 << 20))
            resp = recv_frame(sock)
            assert resp["status"] == "error"
            assert resp["code"] == "frame-too-large"
            assert recv_frame(sock) is None  # server closed the stream
        assert st.server.counters.protocol_errors == 1

    def test_malformed_json_keeps_connection_usable(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            payload = b"{definitely not json"
            sock.sendall(struct.pack(">I", len(payload)) + payload)
            resp = recv_frame(sock)
            assert resp["status"] == "error"
            assert resp["code"] == "bad-request"
            # same connection still serves real requests
            send_frame(sock, {"op": "ping", "id": 1})
            resp = recv_frame(sock)
            assert resp == {"id": 1, "status": "ok", "result": "pong"}

    def test_disconnect_mid_request_frees_the_slot(self, make_server):
        st = make_server(session=SlowSession(delay=1.0), max_inflight=1)
        host, port = st.address
        sock = socket.create_connection((host, port), timeout=10)
        send_frame(
            sock, {"op": "compile", "source": SIMPLE_MAIN, "filename": "s.c", "id": 1}
        )
        _wait_until(
            lambda: st.server.limiter.inflight == 1, what="request to start"
        )
        sock.close()  # walk away mid-request
        _wait_until(
            lambda: st.server.limiter.inflight == 0, what="slot to free"
        )
        # ... and the server still serves new clients on the freed slot.
        with _client(st) as c:
            assert c.compile(SIMPLE_MAIN, "s.c")["cache_state"] in (
                "cold", "memory",  # the abandoned run may still warm the cache
            )


class TestCoalescing:
    def test_n_identical_concurrent_requests_one_pipeline_run(self, make_server):
        st = make_server(session=SlowSession(delay=0.4), max_inflight=16)
        n = 8
        results, errors = [], []
        barrier = threading.Barrier(n)

        def worker():
            try:
                with _client(st) as c:
                    barrier.wait()
                    results.append(c.compile(FIG2_SOURCE, "fig2.c"))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors[:2]
        assert len(results) == n
        # exactly one pipeline execution; everyone saw the same artifact
        assert st.server.counters.pipeline_runs == 1
        assert st.server.coalescer.coalesced_hits == n - 1
        assert len({r["rtl_sha256"] for r in results}) == 1
        assert sum(1 for r in results if r["cache_state"] == "cold") == n

    def test_different_options_do_not_coalesce(self, make_server):
        st = make_server(session=SlowSession(delay=0.2), max_inflight=16)
        from repro.driver.compile import CompileOptions

        done = []
        barrier = threading.Barrier(2)

        def worker(opts):
            with _client(st) as c:
                barrier.wait()
                done.append(c.compile(FIG2_SOURCE, "fig2.c", options=opts))

        threads = [
            threading.Thread(target=worker, args=(CompileOptions(),)),
            threading.Thread(target=worker, args=(CompileOptions(cse=True),)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(done) == 2
        assert st.server.counters.pipeline_runs == 2


class TestAdmissionControl:
    def test_overload_rejected_with_retry_after(self, make_server):
        st = make_server(
            session=SlowSession(delay=1.0), workers=1, max_inflight=1, max_queue=0
        )
        first_started = threading.Event()
        first_result = []

        def occupant():
            with _client(st) as c:
                first_started.set()
                first_result.append(c.compile(SIMPLE_MAIN, "a.c"))

        t = threading.Thread(target=occupant)
        t.start()
        first_started.wait(timeout=10)
        _wait_until(
            lambda: st.server.limiter.inflight == 1, what="first request in flight"
        )
        with _client(st) as c:
            with pytest.raises(ServerRejected) as exc:
                # distinct source so it cannot coalesce with the occupant
                c.compile(FIG2_SOURCE, "b.c")
        assert exc.value.retry_after > 0
        t.join(timeout=30)
        assert first_result and first_result[0]["cache_state"] == "cold"
        assert st.server.counters.rejected == 1

    def test_retry_after_eventually_admits(self, make_server):
        st = make_server(
            session=SlowSession(delay=0.3), workers=1, max_inflight=1, max_queue=0
        )
        occupied = threading.Event()

        def occupant():
            with _client(st) as c:
                occupied.set()
                c.compile(SIMPLE_MAIN, "a.c")

        t = threading.Thread(target=occupant)
        t.start()
        occupied.wait(timeout=10)
        with _client(st) as c:
            result, rejections = c.compile_retry(FIG2_SOURCE, "b.c", retries=20)
        t.join(timeout=30)
        assert result["cache_state"] == "cold"


class TestTimeoutsAndDrain:
    def test_request_timeout_frees_slot_and_reports(self, make_server):
        st = make_server(session=SlowSession(delay=2.0), request_timeout=0.3)
        with _client(st) as c:
            with pytest.raises(ServerError) as exc:
                c.compile(SIMPLE_MAIN, "slow.c")
            assert exc.value.code == "timeout"
        _wait_until(lambda: st.server.limiter.inflight == 0, what="slot release")
        assert st.server.counters.timeouts == 1
        # the abandoned run still completes and warms the cache
        _wait_until(
            lambda: st.server.session.stats.stores >= 1, what="cache store"
        )

    def test_shutdown_op_drains(self, make_server):
        st = make_server()
        with _client(st) as c:
            c.compile(SIMPLE_MAIN, "a.c")
            c.shutdown()
        st._thread.join(timeout=10)
        assert not st._thread.is_alive()

    def test_draining_server_refuses_new_pipeline_work(self, make_server):
        st = make_server(session=SlowSession(delay=1.0))
        with _client(st) as c:
            slow = threading.Thread(
                target=lambda: _client(st).compile(SIMPLE_MAIN, "a.c")
            )
            slow.start()
            _wait_until(
                lambda: st.server.limiter.inflight == 1, what="in-flight request"
            )
            st._loop.call_soon_threadsafe(st.server.initiate_drain)
            _wait_until(lambda: st.server._draining.is_set(), what="drain flag")
            with pytest.raises(ServerError) as exc:
                c.compile(FIG2_SOURCE, "b.c")
            assert exc.value.code == "shutting-down"
            slow.join(timeout=30)
        st._thread.join(timeout=15)
        assert not st._thread.is_alive()
