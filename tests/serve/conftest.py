"""Fixtures for the repro-serve tests: a real daemon on a real socket.

The server runs its own asyncio loop on a background thread; tests speak
to it through the synchronous :class:`~repro.serve.client.ServeClient`,
exactly like production clients.  The fixture exposes the live
:class:`~repro.serve.server.CompileServer` object too, so tests can
assert on internal counters (coalescer executions, limiter slots)
without a stats round-trip.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.driver.session import CompilationSession
from repro.obs import metrics as _metrics
from repro.serve.server import CompileServer, ServeConfig


class SlowSession(CompilationSession):
    """A session whose compiles dawdle — makes request overlap deterministic."""

    def __init__(self, delay: float = 0.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.delay = delay

    def compile(self, source, filename="<input>", options=None, **kwargs):
        if self.delay:
            time.sleep(self.delay)
        return super().compile(source, filename, options, **kwargs)


class ServerThread:
    """Run one CompileServer on a dedicated event-loop thread."""

    def __init__(self, config: ServeConfig, session=None) -> None:
        self.config = config
        self.session = session
        self.server: CompileServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.server = CompileServer(self.config, session=self.session)
        await self.server.start()
        self._ready.set()
        await self.server.serve_until_drained()

    def start(self) -> "ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        return self

    @property
    def address(self) -> tuple[str, int]:
        return self.server.host, self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self.server is not None:
            try:
                self._loop.call_soon_threadsafe(self.server.initiate_drain)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "server failed to drain"


@pytest.fixture()
def make_server(tmp_path):
    """Factory fixture: spin up daemons with per-test knobs, always torn down."""
    started: list[ServerThread] = []
    metrics_was_enabled = _metrics.is_enabled()

    def factory(session=None, **overrides) -> ServerThread:
        overrides.setdefault("port", 0)
        overrides.setdefault("metrics", False)
        overrides.setdefault("request_timeout", 30.0)
        overrides.setdefault("drain_timeout", 10.0)
        st = ServerThread(ServeConfig(**overrides), session=session)
        started.append(st)
        return st.start()

    yield factory
    for st in started:
        st.stop()
    if not metrics_was_enabled:
        _metrics.disable()


@pytest.fixture()
def server(make_server):
    """One default daemon: 4 workers, generous limits, metrics off."""
    return make_server()
