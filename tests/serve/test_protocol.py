"""Wire-level tests: framing, option codecs, request identity."""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.backend.ddg import DDGMode
from repro.driver.compile import CompileOptions
from repro.machine.latencies import r10000_latency
from repro.serve.protocol import (
    FrameTooLarge,
    ProtocolError,
    encode_frame,
    options_from_wire,
    options_to_wire,
    read_frame,
    request_key,
)


def _read(data: bytes, max_frame=None):
    """Drive the async reader over an in-memory stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        if max_frame is None:
            return await read_frame(reader)
        return await read_frame(reader, max_frame)

    return asyncio.run(go())


class TestFraming:
    def test_round_trip(self):
        obj = {"op": "compile", "source": "int main() { return 0; }", "id": 7}
        assert _read(encode_frame(obj)) == obj

    def test_two_frames_back_to_back(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"a": 1}) + encode_frame({"b": 2}))
            reader.feed_eof()
            return await read_frame(reader), await read_frame(reader)

        assert asyncio.run(go()) == ({"a": 1}, {"b": 2})

    def test_clean_eof_returns_none(self):
        assert _read(b"") is None

    def test_mid_frame_eof_raises(self):
        with pytest.raises(asyncio.IncompleteReadError):
            _read(encode_frame({"x": 1})[:-3])

    def test_oversized_header_raises_frame_too_large(self):
        data = struct.pack(">I", 1 << 30) + b"x"
        with pytest.raises(FrameTooLarge):
            _read(data, 1024)

    def test_oversized_encode_refused(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"source": "x" * 2048}, max_frame=1024)

    def test_malformed_json_raises_protocol_error(self):
        payload = b"{not json"
        data = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError):
            _read(data)

    def test_non_object_payload_raises(self):
        payload = json.dumps([1, 2, 3]).encode()
        data = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError):
            _read(data)


class TestOptionsCodec:
    def test_round_trip_preserves_knobs(self):
        opts = CompileOptions(
            mode=DDGMode.HLI,
            schedule=False,
            latency=r10000_latency,
            cse=True,
            licm=True,
            unroll=3,
            lint=True,
        )
        back = options_from_wire(options_to_wire(opts))
        assert back.mode is DDGMode.HLI
        assert back.schedule is False
        assert back.latency is r10000_latency
        assert (back.cse, back.licm, back.unroll, back.lint) == (True, True, 3, True)

    def test_defaults(self):
        back = options_from_wire(None)
        assert back.mode is DDGMode.COMBINED
        assert back.schedule is True

    def test_trace_never_crosses_the_wire(self):
        wire = options_to_wire(CompileOptions(trace=True))
        assert "trace" not in wire
        assert options_from_wire(wire).trace is False

    @pytest.mark.parametrize(
        "wire",
        [
            {"mode": "quantum"},
            {"latency": "cray-1"},
            {"unroll": 0},
            {"unroll": "two"},
            {"pipeline": "cse"},
            {"pipeline": [1, 2]},
        ],
    )
    def test_bad_fields_rejected(self, wire):
        with pytest.raises(ProtocolError):
            options_from_wire(wire)

    def test_options_must_be_object(self):
        with pytest.raises(ProtocolError):
            options_from_wire(["mode", "gcc"])


class TestRequestKey:
    def test_identical_inputs_share_a_key(self):
        w = options_to_wire(CompileOptions())
        assert request_key("compile", "int main(){}", "a.c", w) == request_key(
            "compile", "int main(){}", "a.c", w
        )

    @pytest.mark.parametrize(
        "a,b",
        [
            (("compile", "s", "a.c"), ("lint", "s", "a.c")),
            (("compile", "s", "a.c"), ("compile", "t", "a.c")),
            (("compile", "s", "a.c"), ("compile", "s", "b.c")),
        ],
    )
    def test_any_differing_input_changes_the_key(self, a, b):
        w = options_to_wire(CompileOptions())
        assert request_key(*a, w) != request_key(*b, w)

    def test_options_change_the_key(self):
        w1 = options_to_wire(CompileOptions())
        w2 = options_to_wire(CompileOptions(cse=True))
        assert request_key("compile", "s", "a.c", w1) != request_key(
            "compile", "s", "a.c", w2
        )
