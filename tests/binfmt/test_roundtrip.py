"""Property-based round-trips for the :mod:`repro.binfmt` codec.

Every blob kind the warm path persists or ships gets a round-trip
check over fuzzer-generated programs (:mod:`repro.difftest.gen`): RTL
functions (the hand-packed :mod:`~repro.binfmt.rtlcodec` layout),
``UnitInfo`` analysis artifacts, the per-function stats slices, whole
``Compilation`` objects (the serve wire payload), and the linker's
persisted summary tables.  Comparison is structural — set-valued fields
may re-iterate in a different order, so byte equality is deliberately
not the contract.

Corruption is exercised at both layers: truncating a binfmt payload
raises :class:`~repro.binfmt.BinFormatError` (never returns a partial
graph), and flipping any bit of a framed session blob or a persisted
summary table trips the SHA-256 checksum rather than decoding garbage.
"""

from __future__ import annotations

import pytest

from repro import binfmt
from repro.analysis.builder import FrontEndInfo, UnitInfo
from repro.backend.ddg import DepStats
from repro.backend.mapping import MapStats
from repro.backend.rtl import RTLFunction
from repro.binfmt.rtlcodec import decode_rtl_function, encode_rtl_function
from repro.difftest.gen import GenConfig, generate, generate_units
from repro.driver.compile import Compilation, CompileOptions, compile_source
from repro.linker import analyze_unit, compute_summaries
from repro.linker.persist import (
    SummaryFormatError,
    decode_summaries,
    encode_summaries,
    local_fingerprint,
)
from repro.frontend import parse_and_check

SEEDS = (3, 17, 91)


@pytest.fixture(scope="module", params=SEEDS)
def fuzzed(request):
    source = generate(request.param, GenConfig(functions=3, structs=True))
    return compile_source(source, f"fuzz{request.param}.c", CompileOptions(cse=True, licm=True))


def assert_rtl_equal(a: RTLFunction, b: RTLFunction) -> None:
    assert a.name == b.name
    assert len(a.insns) == len(b.insns)
    for ia, ib in zip(a.insns, b.insns):
        assert ia.op is ib.op
        assert ia.dst == ib.dst
        assert ia.srcs == ib.srcs
        assert ia.label == ib.label
        assert ia.callee == ib.callee
        assert ia.line == ib.line
        assert ia.is_float == ib.is_float
        assert ia.imm == ib.imm
        assert ia.symbol == ib.symbol
        assert ia.hli_item == ib.hli_item
        assert (ia.mem is None) == (ib.mem is None)
        if ia.mem is not None:
            assert ia.mem.addr == ib.mem.addr
            assert ia.mem.width == ib.mem.width
            assert ia.mem.is_store == ib.mem.is_store
    assert a.param_regs == b.param_regs
    assert a.ret_reg == b.ret_reg
    assert a.ret_is_float == b.ret_is_float
    assert a.loops == b.loops
    assert a.frame == b.frame
    assert a.frame_size == b.frame_size


class TestRTLFunctionCodec:
    def test_round_trip(self, fuzzed):
        for name, fn in fuzzed.rtl.functions.items():
            back = decode_rtl_function(encode_rtl_function(fn))
            assert_rtl_equal(fn, back)

    def test_generic_codec_round_trip(self, fuzzed):
        # the generic OBJ path (used inside composite payloads) must
        # agree with the hand-packed codec
        for fn in fuzzed.rtl.functions.values():
            back = binfmt.decode(binfmt.encode(fn))
            assert isinstance(back, RTLFunction)
            assert_rtl_equal(fn, back)

    def test_truncation_raises(self, fuzzed):
        fn = next(iter(fuzzed.rtl.functions.values()))
        blob = encode_rtl_function(fn)
        for cut in (0, 1, len(blob) // 3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(binfmt.BinFormatError):
                decode_rtl_function(blob[:cut])


class TestUnitInfoCodec:
    def test_round_trip(self, fuzzed):
        for name, unit in fuzzed.frontend.units.items():
            back = binfmt.decode(binfmt.encode(unit))
            assert isinstance(back, UnitInfo)
            assert back.fn.name == unit.fn.name
            assert [i.item_id for i in back.items] == [i.item_id for i in unit.items]
            assert [i.kind for i in back.items] == [i.kind for i in unit.items]
            assert [i.line for i in back.items] == [i.line for i in unit.items]
            assert sorted(back.region_by_id) == sorted(unit.region_by_id)
            assert sorted(back.class_info) == sorted(unit.class_info)
            for cid, info in unit.class_info.items():
                got = back.class_info[cid]
                assert got.equiv is info.equiv
                assert got.member_items == info.member_items
                assert got.is_deref == info.is_deref

    def test_frontend_round_trip(self, fuzzed):
        back = binfmt.decode(binfmt.encode(fuzzed.frontend))
        assert isinstance(back, FrontEndInfo)
        assert sorted(back.units) == sorted(fuzzed.frontend.units)
        assert sorted(back.refmod) == sorted(fuzzed.frontend.refmod)
        for name, eff in fuzzed.frontend.refmod.items():
            assert len(back.refmod[name].ref) == len(eff.ref)
            assert len(back.refmod[name].mod) == len(eff.mod)


class TestStatsCodecs:
    def test_stats_slices_round_trip(self, fuzzed):
        for name in fuzzed.rtl.functions:
            ms = fuzzed.map_stats.get(name, MapStats())
            ds = fuzzed.dep_stats.get(name, DepStats())
            ms2, ds2 = binfmt.decode(binfmt.encode((ms, ds)))
            assert ms2.mapped == ms.mapped
            assert ms2.unmapped == ms.unmapped
            assert ms2.mismatched_lines == ms.mismatched_lines
            assert ds2.total_tests == ds.total_tests
            assert ds2.gcc_yes == ds.gcc_yes
            assert ds2.hli_yes == ds.hli_yes
            assert ds2.combined_yes == ds.combined_yes
            assert ds2.call_tests == ds.call_tests
            assert ds2.call_dep == ds.call_dep

    def test_opt_stats_round_trip(self, fuzzed):
        os2 = binfmt.decode(binfmt.encode(fuzzed.opt_stats))
        assert os2.cse.alu_eliminated == fuzzed.opt_stats.cse.alu_eliminated
        assert os2.cse.loads_eliminated == fuzzed.opt_stats.cse.loads_eliminated
        assert os2.licm.alu_hoisted == fuzzed.opt_stats.licm.alu_hoisted
        assert os2.licm.loads_hoisted == fuzzed.opt_stats.licm.loads_hoisted
        assert os2.unroll.loops_unrolled == fuzzed.opt_stats.unroll.loops_unrolled


class TestCompilationCodec:
    """The serve wire ships whole Compilation graphs."""

    def test_round_trip(self, fuzzed):
        back = binfmt.decode(binfmt.encode(fuzzed))
        assert isinstance(back, Compilation)
        assert back.filename == fuzzed.filename
        assert sorted(back.rtl.functions) == sorted(fuzzed.rtl.functions)
        for name, fn in fuzzed.rtl.functions.items():
            assert_rtl_equal(fn, back.rtl.functions[name])
        assert back.rtl.globals_layout == fuzzed.rtl.globals_layout
        assert back.rtl.init_data == fuzzed.rtl.init_data
        assert sorted(back.hli.entries) == sorted(fuzzed.hli.entries)
        for name, entry in fuzzed.hli.entries.items():
            got = back.hli.entries[name]
            assert got.root_region_id == entry.root_region_id
            assert sorted(got.regions) == sorted(entry.regions)
            assert sorted(got.line_table.entries) == sorted(entry.line_table.entries)

    def test_truncation_raises(self, fuzzed):
        blob = binfmt.encode(fuzzed)
        for cut in (0, 3, len(blob) // 4, len(blob) - 2):
            with pytest.raises(binfmt.BinFormatError):
                binfmt.decode(blob[:cut])


class TestLinkSummaryCodec:
    def _result(self, seed: int):
        units = []
        for filename, source in generate_units(seed, n_units=3):
            program, table = parse_and_check(source, filename)
            units.append(analyze_unit(program, table, filename=filename))
        return units, compute_summaries(units)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_round_trip(self, seed):
        units, result = self._result(seed)
        key = local_fingerprint(units)
        back_key, back = decode_summaries(encode_summaries(result, key))
        assert back_key == key
        assert sorted(back.summaries) == sorted(result.summaries)
        for name, s in result.summaries.items():
            b = back.summaries[name]
            assert (b.unit, b.ref_any, b.mod_any, b.scc_id) == (
                s.unit,
                s.ref_any,
                s.mod_any,
                s.scc_id,
            )
            assert b.ref_names == s.ref_names
            assert b.mod_names == s.mod_names
            assert b.param_ref == s.param_ref
            assert b.param_mod == s.param_mod
        assert back.sccs == result.sccs
        assert back.iterations == result.iterations
        assert back.call_graph == result.call_graph

    def test_bit_flip_raises(self):
        units, result = self._result(SEEDS[0])
        blob = bytearray(encode_summaries(result, local_fingerprint(units)))
        # flip one payload bit: the checksum must catch it
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(SummaryFormatError, match="checksum|truncated|bad"):
            decode_summaries(bytes(blob))

    def test_truncation_raises(self):
        units, result = self._result(SEEDS[0])
        blob = encode_summaries(result, local_fingerprint(units))
        for cut in (2, 20, len(blob) // 2, len(blob) - 1):
            with pytest.raises(SummaryFormatError):
                decode_summaries(blob[:cut])
