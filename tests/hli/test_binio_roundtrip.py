"""Round-trip property tests for binio edge cases.

The main hypothesis round-trip in ``test_binio.py`` exercises typical
table shapes; these tests pin down the boundaries of the fixed-width
encoding — empty tables, single-entry sections, maximum-width values,
and the sentinel encodings (``distance=None`` as ``-1``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hli.binio import HLIFormatError, decode_hli, encode_hli
from repro.hli.tables import (
    AliasEntry,
    DepType,
    EqClass,
    EquivType,
    HLIEntry,
    HLIFile,
    ItemType,
    LCDDEntry,
    LineTable,
    RefModEntry,
    RefModKey,
    RegionEntry,
    RegionType,
)

from .test_binio import entries_equal

U32_MAX = 0xFFFFFFFF
I32_MIN = -(2**31)
I32_MAX = 2**31 - 1


def roundtrip(hli: HLIFile) -> HLIFile:
    return decode_hli(encode_hli(hli))


def test_empty_file_roundtrips():
    out = roundtrip(HLIFile(source_filename=""))
    assert out.source_filename == ""
    assert out.entries == {}


def test_empty_entry_roundtrips():
    hli = HLIFile(source_filename="a.c")
    hli.add(HLIEntry(unit_name="f"))
    out = roundtrip(hli)
    assert entries_equal(hli.entries["f"], out.entries["f"])


def test_single_entry_every_section():
    """One region carrying exactly one row in every table."""
    entry = HLIEntry(unit_name="g", root_region_id=1)
    entry.line_table.add_item(5, 10, ItemType.LOAD)
    region = RegionEntry(
        region_id=1,
        region_type=RegionType.LOOP,
        parent_id=None,
        line_start=5,
        line_end=9,
        loop_step=1,
        loop_trip=8,
        eq_classes=[
            EqClass(
                class_id=2,
                equiv_type=EquivType.DEFINITE,
                member_items=[10],
                member_classes=[],
            )
        ],
        alias_entries=[AliasEntry(class_ids=frozenset({2, 3}))],
        lcdd_entries=[
            LCDDEntry(src_class=2, dst_class=2, dep_type=DepType.DEFINITE, distance=1)
        ],
        refmod_entries=[
            RefModEntry(
                key_kind=RefModKey.CALL_ITEM,
                key_id=10,
                ref_all=False,
                mod_all=True,
                ref_classes=[2],
                mod_classes=[],
            )
        ],
    )
    entry.regions[1] = region
    hli = HLIFile(source_filename="one.c")
    hli.add(entry)
    out = roundtrip(hli)
    assert entries_equal(entry, out.entries["g"])
    got = out.entries["g"].regions[1]
    assert got.lcdd_entries[0].distance == 1
    assert got.refmod_entries[0].mod_all is True
    assert got.refmod_entries[0].ref_all is False


@pytest.mark.parametrize("distance", [None, 0, 1, I32_MAX])
def test_lcdd_distance_sentinel(distance):
    """``None`` is encoded as -1; 0 is a real (same-iteration) distance
    and must NOT collapse into the sentinel."""
    entry = HLIEntry(unit_name="f", root_region_id=1)
    entry.regions[1] = RegionEntry(
        region_id=1,
        region_type=RegionType.UNIT,
        parent_id=None,
        line_start=1,
        line_end=2,
        lcdd_entries=[
            LCDDEntry(src_class=1, dst_class=2, dep_type=DepType.MAYBE, distance=distance)
        ],
    )
    hli = HLIFile()
    hli.add(entry)
    got = roundtrip(hli).entries["f"].regions[1].lcdd_entries[0]
    assert got.distance == distance


def test_maximum_width_values():
    """IDs at the u32 ceiling and loop fields at the i32 extremes."""
    entry = HLIEntry(unit_name="wide", root_region_id=U32_MAX)
    entry.line_table.add_item(U32_MAX, U32_MAX, ItemType.STORE)
    entry.regions[U32_MAX] = RegionEntry(
        region_id=U32_MAX,
        region_type=RegionType.LOOP,
        parent_id=U32_MAX - 1,
        line_start=U32_MAX,
        line_end=U32_MAX,
        loop_step=I32_MIN,
        loop_trip=I32_MAX,
        eq_classes=[
            EqClass(
                class_id=U32_MAX,
                equiv_type=EquivType.MAYBE,
                member_items=[0, U32_MAX],
                member_classes=[U32_MAX],
            )
        ],
    )
    hli = HLIFile(source_filename="w.c")
    hli.add(entry)
    out = roundtrip(hli)
    assert entries_equal(entry, out.entries["wide"])
    region = out.entries["wide"].regions[U32_MAX]
    assert region.loop_step == I32_MIN
    assert region.loop_trip == I32_MAX


def test_long_and_unicode_names():
    long_name = "u" * 5000  # u16 length field counts bytes, not chars
    hli = HLIFile(source_filename="dir/éт你.c")
    hli.add(HLIEntry(unit_name=long_name))
    out = roundtrip(hli)
    assert out.source_filename == "dir/éт你.c"
    assert long_name in out.entries


def test_truncated_payload_raises():
    data = encode_hli_with_one_region()
    for cut in (3, 5, len(data) // 2, len(data) - 1):
        with pytest.raises(HLIFormatError):
            decode_hli(data[:cut])


def encode_hli_with_one_region() -> bytes:
    entry = HLIEntry(unit_name="f", root_region_id=1)
    entry.line_table.add_item(1, 2, ItemType.LOAD)
    entry.regions[1] = RegionEntry(
        region_id=1, region_type=RegionType.UNIT, parent_id=None,
        line_start=1, line_end=3,
    )
    hli = HLIFile(source_filename="t.c")
    hli.add(entry)
    return encode_hli(hli)


@settings(max_examples=60, deadline=None)
@given(
    n_items=st.integers(min_value=0, max_value=3),
    item_ids=st.lists(st.integers(min_value=0, max_value=U32_MAX), min_size=3, max_size=3),
    step=st.integers(min_value=I32_MIN, max_value=I32_MAX),
    trip=st.integers(min_value=I32_MIN, max_value=I32_MAX),
    distance=st.one_of(st.none(), st.integers(min_value=0, max_value=I32_MAX)),
)
def test_roundtrip_property_boundaries(n_items, item_ids, step, trip, distance):
    entry = HLIEntry(unit_name="p", root_region_id=1)
    for k in range(n_items):
        entry.line_table.add_item(k + 1, item_ids[k], ItemType.LOAD)
    entry.regions[1] = RegionEntry(
        region_id=1,
        region_type=RegionType.LOOP,
        parent_id=None,
        line_start=1,
        line_end=9,
        loop_step=step,
        loop_trip=trip,
        lcdd_entries=[
            LCDDEntry(src_class=1, dst_class=1, dep_type=DepType.MAYBE, distance=distance)
        ],
    )
    hli = HLIFile(source_filename="p.c")
    hli.add(entry)
    out = roundtrip(hli)
    assert entries_equal(entry, out.entries["p"])
