"""HLI size accounting, file I/O, and text dump tests."""

import pytest

from repro import CompileOptions, compile_source
from repro.frontend.source import SourceFile
from repro.hli.reader import HLIFileReader, load_hli, save_hli
from repro.hli.sizes import hli_size_bytes, size_report
from repro.hli.writer import format_entry, format_hli
from repro.workloads.suite import BENCHMARKS, float_benchmarks, integer_benchmarks


class TestCodeLineCounting:
    def test_counts_nonblank(self):
        sf = SourceFile("int x;\n\n\nint y;\n")
        assert sf.count_code_lines() == 2

    def test_skips_line_comments(self):
        sf = SourceFile("// header\nint x; // trailing\n// footer\n")
        assert sf.count_code_lines() == 1

    def test_skips_block_comments(self):
        sf = SourceFile("/* one\ntwo\nthree */\nint x;\n")
        assert sf.count_code_lines() == 1

    def test_code_around_block_comment(self):
        sf = SourceFile("int a; /* c */ int b;\n")
        assert sf.count_code_lines() == 1


class TestSizeReport:
    def test_nonzero_sizes(self):
        b = BENCHMARKS[0]
        comp = compile_source(b.source, b.name, CompileOptions(schedule=False))
        rep = size_report(comp.hli, b.source)
        assert rep.hli_bytes > 0
        assert rep.code_lines > 0
        assert rep.bytes_per_line == rep.hli_bytes / rep.code_lines

    def test_fp_programs_denser_than_int(self):
        """The paper's Table 1 headline: fp codes carry more HLI per line."""

        def mean_ratio(benches):
            vals = []
            for b in benches:
                comp = compile_source(b.source, b.name, CompileOptions(schedule=False))
                vals.append(size_report(comp.hli, b.source).bytes_per_line)
            return sum(vals) / len(vals)

        assert mean_ratio(float_benchmarks()) > mean_ratio(integer_benchmarks())


class TestFileIO:
    def test_save_load_roundtrip(self, tmp_path, fig2_compilation):
        path = tmp_path / "fig2.hli"
        n = save_hli(fig2_compilation.hli, path)
        assert path.stat().st_size == n
        loaded = load_hli(path)
        assert set(loaded.entries) == {"foo"}

    def test_on_demand_reader(self, tmp_path):
        src = "int g;\nvoid a() { g = 1; }\nvoid b() { g = 2; }\nvoid c() { g = 3; }\n"
        comp = compile_source(src, "multi.c", CompileOptions(schedule=False))
        path = tmp_path / "multi.hli"
        save_hli(comp.hli, path)
        reader = HLIFileReader.open(path)
        assert set(reader.unit_names()) == {"a", "b", "c"}
        entry_b = reader.entry("b")
        assert entry_b.unit_name == "b"
        assert entry_b.line_table.num_items == 1
        # cached on repeat
        assert reader.entry("b") is entry_b

    def test_reader_missing_unit(self, tmp_path, fig2_compilation):
        path = tmp_path / "x.hli"
        save_hli(fig2_compilation.hli, path)
        reader = HLIFileReader.open(path)
        with pytest.raises(KeyError):
            reader.entry("nope")


class TestTextWriter:
    def test_format_mentions_tables(self, fig2_compilation):
        text = format_hli(fig2_compilation.hli)
        assert "Line table" in text
        assert "equivalent access table" in text
        assert "LCDD table" in text
        assert "alias" in text

    def test_format_entry_lists_regions(self, fig2_compilation):
        text = format_entry(fig2_compilation.hli.entry("foo"))
        assert text.count("    Region ") == 4

    def test_size_matches_encode(self, fig2_compilation):
        from repro.hli.binio import encode_hli

        assert hli_size_bytes(fig2_compilation.hli) == len(
            encode_hli(fig2_compilation.hli)
        )
