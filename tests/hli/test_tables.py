"""HLI data-model helper tests."""

from repro.hli.tables import (
    EqClass,
    HLIEntry,
    HLIFile,
    ItemType,
    LineTable,
    RegionEntry,
    RegionType,
)


class TestLineTable:
    def test_add_preserves_order(self):
        lt = LineTable()
        lt.add_item(5, 1, ItemType.LOAD)
        lt.add_item(5, 2, ItemType.STORE)
        assert lt.items_on_line(5) == [(1, ItemType.LOAD), (2, ItemType.STORE)]

    def test_missing_line_empty(self):
        assert LineTable().items_on_line(99) == []

    def test_all_items_sorted_by_line(self):
        lt = LineTable()
        lt.add_item(9, 3, ItemType.LOAD)
        lt.add_item(2, 1, ItemType.CALL)
        assert [i for i, _ in lt.all_items()] == [1, 3]

    def test_num_items(self):
        lt = LineTable()
        lt.add_item(1, 1, ItemType.LOAD)
        lt.add_item(1, 2, ItemType.LOAD)
        lt.add_item(3, 3, ItemType.STORE)
        assert lt.num_items == 3


class TestRegionEntry:
    def test_class_by_id(self):
        r = RegionEntry(
            region_id=1,
            region_type=RegionType.UNIT,
            parent_id=None,
            line_start=1,
            line_end=9,
        )
        c = EqClass(class_id=7)
        r.eq_classes.append(c)
        assert r.class_by_id(7) is c
        assert r.class_by_id(8) is None


class TestHLIEntryNavigation:
    def _entry(self):
        e = HLIEntry(unit_name="f", root_region_id=1)
        root = RegionEntry(1, RegionType.UNIT, None, 1, 20, sub_region_ids=[2])
        loop = RegionEntry(2, RegionType.LOOP, 1, 3, 10)
        loop.eq_classes.append(EqClass(class_id=100, member_items=[5, 6]))
        root.eq_classes.append(EqClass(class_id=101, member_classes=[100]))
        e.regions = {1: root, 2: loop}
        return e

    def test_region_of_item(self):
        e = self._entry()
        assert e.region_of_item(5).region_id == 2
        assert e.region_of_item(99) is None

    def test_postorder_children_first(self):
        e = self._entry()
        order = [r.region_id for r in e.iter_regions_postorder()]
        assert order == [2, 1]

    def test_root_region(self):
        e = self._entry()
        assert e.root_region().region_id == 1


class TestHLIFile:
    def test_add_and_lookup(self):
        f = HLIFile()
        f.add(HLIEntry(unit_name="g"))
        assert f.entry("g").unit_name == "g"
