"""HLI maintenance API tests (paper Section 3.2.3, Figure 6)."""

import pytest

from repro import CompileOptions, compile_source
from repro.analysis.items import AccessKind
from repro.hli.maintenance import (
    MaintenanceError,
    delete_item,
    find_item_class,
    generate_item,
    inherit_item,
    move_item_to_parent,
    next_free_id,
    unroll_region,
)
from repro.hli.query import EquivAcc, HLIQuery
from repro.hli.tables import DepType, ItemType, RegionType


LOOP_SRC = """int a[100];
int s;
void f() {
    int i;
    for (i = 1; i < 20; i++) {
        a[i] = a[i-1] + s;
    }
}
"""


@pytest.fixture()
def ctx():
    comp = compile_source(LOOP_SRC, "m.c", CompileOptions(schedule=False))
    entry = comp.hli.entry("f")
    unit = comp.frontend.units["f"]
    return comp, entry, unit


def item_id(unit, text, kind=None):
    for it in unit.items:
        if it.ref is not None and str(it.ref) == text:
            if kind is None or it.kind is kind:
                return it.item_id
    raise AssertionError(text)


class TestDeleteItem:
    def test_removed_from_line_table(self, ctx):
        _, entry, unit = ctx
        iid = item_id(unit, "a[i-1]")
        delete_item(entry, iid)
        all_items = {i for i, _ in entry.line_table.all_items()}
        assert iid not in all_items

    def test_removed_from_class(self, ctx):
        _, entry, unit = ctx
        iid = item_id(unit, "a[i-1]")
        delete_item(entry, iid)
        assert find_item_class(entry, iid) is None

    def test_empty_class_cascades(self, ctx):
        _, entry, unit = ctx
        iid = item_id(unit, "a[i-1]")
        found = find_item_class(entry, iid)
        region, cls = found
        assert cls.member_items == [iid]  # only member
        n_before = len(region.lcdd_entries)
        delete_item(entry, iid)
        assert region.class_by_id(cls.class_id) is None
        assert len(region.lcdd_entries) < n_before  # its LCDD arc went too

    def test_query_unknown_after_delete(self, ctx):
        _, entry, unit = ctx
        iid = item_id(unit, "a[i-1]")
        other = item_id(unit, "a[i]", AccessKind.STORE)
        delete_item(entry, iid)
        q = HLIQuery(entry)
        assert q.get_equiv_acc(iid, other) is EquivAcc.UNKNOWN


class TestGenerateAndInherit:
    def test_generate_creates_fresh_ids(self, ctx):
        _, entry, unit = ctx
        before = next_free_id(entry)
        loop_region = next(
            r for r in entry.regions.values() if r.region_type is RegionType.LOOP
        )
        new_id = generate_item(entry, 99, ItemType.LOAD, loop_region.region_id)
        assert new_id >= before
        assert find_item_class(entry, new_id) is not None

    def test_inherit_joins_class(self, ctx):
        _, entry, unit = ctx
        old = item_id(unit, "a[i]", AccessKind.STORE)
        new_id = next_free_id(entry)
        inherit_item(entry, new_id, old, line=6, item_type=ItemType.LOAD)
        q = HLIQuery(entry)
        assert q.get_equiv_acc(new_id, old) is EquivAcc.DEFINITE

    def test_inherit_missing_item_raises(self, ctx):
        _, entry, _ = ctx
        with pytest.raises(MaintenanceError):
            inherit_item(entry, 500, 499, line=1, item_type=ItemType.LOAD)


class TestMoveToParent:
    def test_move_rehomes_item(self, ctx):
        _, entry, unit = ctx
        iid = item_id(unit, "s")  # loop-invariant scalar load
        q_before = HLIQuery(entry)
        loop_home = q_before.item_home(iid)
        move_item_to_parent(entry, iid)
        q_after = HLIQuery(entry)
        new_home = q_after.item_home(iid)
        assert new_home != loop_home
        assert entry.regions[new_home].region_type is RegionType.UNIT


class TestUnrollRegion:
    def test_clones_items_and_classes(self, ctx):
        _, entry, unit = ctx
        loop = next(
            r for r in entry.regions.values() if r.region_type is RegionType.LOOP
        )
        n_classes = len(loop.eq_classes)
        n_items = entry.line_table.num_items
        maint = unroll_region(entry, loop.region_id, 2)
        assert len(loop.eq_classes) == 2 * n_classes
        assert entry.line_table.num_items > n_items
        assert maint.item_copy  # item clones recorded

    def test_distance_one_becomes_intra_iteration_alias(self, ctx):
        _, entry, unit = ctx
        loop = next(
            r for r in entry.regions.values() if r.region_type is RegionType.LOOP
        )
        store = item_id(unit, "a[i]", AccessKind.STORE)
        load = item_id(unit, "a[i-1]")
        maint = unroll_region(entry, loop.region_id, 2)
        q = HLIQuery(entry)
        load_copy1 = maint.item_copy[(load, 1)]
        # store of copy 0 and the a[i-1] load of copy 1 hit the same location
        assert q.get_equiv_acc(store, load_copy1) is EquivAcc.MAYBE
        # but copy 0's own load stays independent of copy 0's store
        assert q.get_equiv_acc(store, load) is EquivAcc.NONE

    def test_crossing_distance_rescaled(self, ctx):
        _, entry, unit = ctx
        loop = next(
            r for r in entry.regions.values() if r.region_type is RegionType.LOOP
        )
        unroll_region(entry, loop.region_id, 2)
        defs = [d for d in loop.lcdd_entries if d.dep_type is DepType.DEFINITE]
        # the original d=1 arc: copy1 -> copy0 of next unrolled iteration
        assert any(d.distance == 1 for d in defs)

    def test_trip_count_divided(self, ctx):
        _, entry, _ = ctx
        loop = next(
            r for r in entry.regions.values() if r.region_type is RegionType.LOOP
        )
        trip = loop.loop_trip
        unroll_region(entry, loop.region_id, 2)
        assert loop.loop_trip == trip // 2

    def test_factor_one_rejected(self, ctx):
        _, entry, _ = ctx
        loop = next(
            r for r in entry.regions.values() if r.region_type is RegionType.LOOP
        )
        with pytest.raises(MaintenanceError):
            unroll_region(entry, loop.region_id, 1)
