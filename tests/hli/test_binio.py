"""Binary serialization tests, including a hypothesis round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_source
from repro.hli.binio import HLIFormatError, decode_hli, encode_hli
from repro.hli.tables import (
    AliasEntry,
    DepType,
    EqClass,
    EquivType,
    HLIEntry,
    HLIFile,
    ItemType,
    LCDDEntry,
    RefModEntry,
    RefModKey,
    RegionEntry,
    RegionType,
)
from repro.workloads.suite import BENCHMARKS


def entries_equal(a: HLIEntry, b: HLIEntry) -> bool:
    if a.unit_name != b.unit_name or a.root_region_id != b.root_region_id:
        return False
    if {k: [(i, t) for i, t in v.items] for k, v in a.line_table.entries.items()} != {
        k: [(i, t) for i, t in v.items] for k, v in b.line_table.entries.items()
    }:
        return False
    if set(a.regions) != set(b.regions):
        return False
    for rid in a.regions:
        ra, rb = a.regions[rid], b.regions[rid]
        if (
            ra.region_type != rb.region_type
            or ra.parent_id != rb.parent_id
            or ra.line_start != rb.line_start
            or ra.line_end != rb.line_end
            or ra.loop_step != rb.loop_step
            or ra.loop_trip != rb.loop_trip
            or ra.sub_region_ids != rb.sub_region_ids
        ):
            return False
        ca = [(c.class_id, c.equiv_type, c.member_items, c.member_classes) for c in ra.eq_classes]
        cb = [(c.class_id, c.equiv_type, c.member_items, c.member_classes) for c in rb.eq_classes]
        if ca != cb:
            return False
        if [x.class_ids for x in ra.alias_entries] != [x.class_ids for x in rb.alias_entries]:
            return False
        la = [(d.src_class, d.dst_class, d.dep_type, d.distance) for d in ra.lcdd_entries]
        lb = [(d.src_class, d.dst_class, d.dep_type, d.distance) for d in rb.lcdd_entries]
        if la != lb:
            return False
        ma = [
            (m.key_kind, m.key_id, m.ref_all, m.mod_all, m.ref_classes, m.mod_classes)
            for m in ra.refmod_entries
        ]
        mb = [
            (m.key_kind, m.key_id, m.ref_all, m.mod_all, m.ref_classes, m.mod_classes)
            for m in rb.refmod_entries
        ]
        if ma != mb:
            return False
    return True


class TestRealPrograms:
    @pytest.mark.parametrize("bench", BENCHMARKS[:6], ids=lambda b: b.name)
    def test_roundtrip_benchmark(self, bench):
        comp = compile_source(bench.source, bench.name, CompileOptions(schedule=False))
        data = encode_hli(comp.hli)
        decoded = decode_hli(data)
        assert set(decoded.entries) == set(comp.hli.entries)
        for name in comp.hli.entries:
            assert entries_equal(comp.hli.entries[name], decoded.entries[name])

    def test_bad_magic_rejected(self):
        with pytest.raises(HLIFormatError):
            decode_hli(b"NOPE" + b"\x00" * 16)

    def test_truncated_rejected(self):
        comp = compile_source(BENCHMARKS[0].source, "wc", CompileOptions(schedule=False))
        data = encode_hli(comp.hli)
        with pytest.raises(HLIFormatError):
            decode_hli(data[: len(data) // 2])


# -- synthetic random HLI files -------------------------------------------------

ids = st.integers(min_value=1, max_value=10_000)


@st.composite
def eq_classes(draw):
    return EqClass(
        class_id=draw(ids),
        equiv_type=draw(st.sampled_from(list(EquivType))),
        member_items=draw(st.lists(ids, max_size=5)),
        member_classes=draw(st.lists(ids, max_size=3)),
    )


@st.composite
def region_entries(draw, rid: int):
    return RegionEntry(
        region_id=rid,
        region_type=draw(st.sampled_from(list(RegionType))),
        parent_id=draw(st.one_of(st.none(), ids)),
        line_start=draw(st.integers(1, 5000)),
        line_end=draw(st.integers(1, 5000)),
        sub_region_ids=draw(st.lists(ids, max_size=3)),
        eq_classes=draw(st.lists(eq_classes(), max_size=4)),
        alias_entries=draw(
            st.lists(
                st.builds(
                    AliasEntry,
                    class_ids=st.frozensets(ids, min_size=2, max_size=4),
                ),
                max_size=3,
            )
        ),
        lcdd_entries=draw(
            st.lists(
                st.builds(
                    LCDDEntry,
                    src_class=ids,
                    dst_class=ids,
                    dep_type=st.sampled_from(list(DepType)),
                    distance=st.one_of(st.none(), st.integers(0, 100)),
                ),
                max_size=3,
            )
        ),
        refmod_entries=draw(
            st.lists(
                st.builds(
                    RefModEntry,
                    key_kind=st.sampled_from(list(RefModKey)),
                    key_id=ids,
                    ref_classes=st.lists(ids, max_size=3),
                    mod_classes=st.lists(ids, max_size=3),
                    ref_all=st.booleans(),
                    mod_all=st.booleans(),
                ),
                max_size=2,
            )
        ),
        loop_step=draw(st.integers(-8, 8)),
        loop_trip=draw(st.integers(-1, 1000)),
    )


@st.composite
def hli_files(draw):
    hli = HLIFile(source_filename=draw(st.text(max_size=20)))
    n_units = draw(st.integers(1, 3))
    for u in range(n_units):
        entry = HLIEntry(unit_name=f"unit{u}")
        entry.root_region_id = draw(ids)
        for line in draw(st.lists(st.integers(1, 400), max_size=5, unique=True)):
            for _ in range(draw(st.integers(1, 3))):
                entry.line_table.add_item(
                    line, draw(ids), draw(st.sampled_from(list(ItemType)))
                )
        n_regions = draw(st.integers(0, 3))
        for r in range(n_regions):
            region = draw(region_entries(rid=r + 1))
            entry.regions[region.region_id] = region
        hli.add(entry)
    return hli


@settings(max_examples=60, deadline=None)
@given(hli_files())
def test_random_hli_roundtrip(hli):
    decoded = decode_hli(encode_hli(hli))
    assert decoded.source_filename == hli.source_filename
    assert set(decoded.entries) == set(hli.entries)
    for name in hli.entries:
        assert entries_equal(hli.entries[name], decoded.entries[name])
