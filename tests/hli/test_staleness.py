"""Generation counter + StaleQueryError protocol (query/maintenance contract).

Every maintenance mutator bumps ``HLIEntry.generation``; an
:class:`~repro.hli.query.HLIQuery` built earlier must refuse to answer
(with a clear :class:`~repro.hli.query.StaleQueryError`) instead of
serving answers computed from tables that no longer exist.
"""

import pytest

from repro import CompileOptions, compile_source
from repro.hli.maintenance import (
    MaintenanceError,
    delete_item,
    generate_item,
    inherit_item,
    move_item_to_parent,
    unroll_region,
)
from repro.hli.query import EquivAcc, HLIQuery, StaleQueryError
from repro.hli.tables import ItemType, RegionType

SRC = """int a[100];
int s;
void f() {
    int i;
    for (i = 1; i < 20; i++) {
        a[i] = a[i-1] + s;
    }
}
"""


@pytest.fixture()
def ctx():
    comp = compile_source(SRC, "m.c", CompileOptions(schedule=False))
    entry = comp.hli.entry("f")
    return comp, entry


def _any_item(entry):
    return next(iter(entry.line_table.all_items()))[0]


def _loop_region(entry):
    return next(
        r for r in entry.regions.values() if r.region_type is RegionType.LOOP
    )


class TestGenerationBumps:
    def test_fresh_entry_is_generation_zero(self, ctx):
        _, entry = ctx
        assert entry.generation == 0

    def test_delete_item_bumps(self, ctx):
        _, entry = ctx
        delete_item(entry, _any_item(entry))
        assert entry.generation == 1

    def test_generate_item_bumps(self, ctx):
        _, entry = ctx
        generate_item(entry, line=5, item_type=ItemType.LOAD, region_id=entry.root_region_id)
        assert entry.generation == 1

    def test_inherit_item_bumps(self, ctx):
        _, entry = ctx
        inherit_item(
            entry,
            new_item=9000,
            old_item=_any_item(entry),
            line=6,
            item_type=ItemType.LOAD,
        )
        assert entry.generation == 1

    def test_inherit_item_missing_does_not_bump(self, ctx):
        _, entry = ctx
        with pytest.raises(MaintenanceError):
            inherit_item(entry, new_item=9000, old_item=424242, line=6, item_type=ItemType.LOAD)
        assert entry.generation == 0

    def test_move_item_to_parent_bumps(self, ctx):
        _, entry = ctx
        loop = _loop_region(entry)
        iid = next(
            iid for c in loop.eq_classes for iid in c.member_items
        )
        move_item_to_parent(entry, iid)
        assert entry.generation == 1

    def test_unroll_region_bumps(self, ctx):
        _, entry = ctx
        unroll_region(entry, _loop_region(entry).region_id, 2)
        assert entry.generation == 1

    def test_failed_maintenance_does_not_bump(self, ctx):
        _, entry = ctx
        loop = _loop_region(entry)
        with pytest.raises(MaintenanceError):
            unroll_region(entry, loop.region_id, 0)  # invalid factor
        assert entry.generation == 0


class TestStaleQueryError:
    def test_query_raises_after_maintenance(self, ctx):
        _, entry = ctx
        query = HLIQuery(entry)
        a, b = [iid for iid, _ in entry.line_table.all_items()][:2]
        assert query.get_equiv_acc(a, b) is not None  # fresh: answers fine
        delete_item(entry, _any_item(entry))
        with pytest.raises(StaleQueryError) as exc:
            query.get_equiv_acc(a, b)
        msg = str(exc.value)
        assert "f" in msg and "generation" in msg and "refresh" in msg

    def test_all_queries_guarded(self, ctx):
        _, entry = ctx
        query = HLIQuery(entry)
        items = [iid for iid, _ in entry.line_table.all_items()]
        delete_item(entry, items[0])
        for call in (
            lambda: query.get_equiv_acc(items[1], items[2]),
            lambda: query.get_alias(items[1], items[2]),
            lambda: query.get_lcdd(items[1], items[2]),
            lambda: query.get_call_acc(items[1], items[2]),
            lambda: query.get_region_info(items[1]),
        ):
            with pytest.raises(StaleQueryError):
                call()

    def test_is_stale_property(self, ctx):
        _, entry = ctx
        query = HLIQuery(entry)
        assert not query.is_stale
        generate_item(entry, line=5, item_type=ItemType.LOAD, region_id=entry.root_region_id)
        assert query.is_stale

    def test_refresh_recovers(self, ctx):
        _, entry = ctx
        query = HLIQuery(entry)
        iid = _any_item(entry)
        delete_item(entry, iid)
        assert query.refresh() is query
        assert not query.is_stale
        # answers reflect the mutated tables: the deleted item is unknown
        others = [i for i, _ in entry.line_table.all_items()]
        assert query.get_equiv_acc(iid, others[0]) is EquivAcc.UNKNOWN

    def test_compilation_queries_stay_fresh_through_passes(self):
        comp = compile_source(
            SRC, "m.c", CompileOptions(cse=True, licm=True, unroll=2)
        )
        for name, query in comp.queries.items():
            assert not query.is_stale, f"{name} query left stale by a pass"
