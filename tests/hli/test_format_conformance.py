"""Conformance of the binary encoder to docs/FORMAT.md.

Decodes the byte stream *by hand*, following the specification document
field by field, and checks the hand-decoded structures against the data
model.  If the implementation drifts from the spec, this fails.
"""

import struct

import pytest

from repro import CompileOptions, compile_source
from repro.hli.binio import encode_hli
from repro.hli.tables import ItemType, RegionType
from repro.workloads.suite import by_name


class SpecReader:
    """A from-scratch reader written against FORMAT.md only."""

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def bytes(self, n):
        out = self.data[self.pos : self.pos + n]
        assert len(out) == n, "truncated"
        self.pos += n
        return out

    def u8(self):
        return self.bytes(1)[0]

    def u16(self):
        return struct.unpack("<H", self.bytes(2))[0]

    def u32(self):
        return struct.unpack("<I", self.bytes(4))[0]

    def i32(self):
        return struct.unpack("<i", self.bytes(4))[0]

    def string(self):
        return self.bytes(self.u16()).decode("utf-8")

    def ids(self):
        return [self.u32() for _ in range(self.u16())]


def hand_decode(data: bytes) -> dict:
    r = SpecReader(data)
    assert r.bytes(4) == b"HLI1"
    source = r.string()
    entries = {}
    for _ in range(r.u16()):
        name = r.string()
        root = r.u32()
        lines = {}
        for _ in range(r.u32()):
            line = r.u32()
            items = [(r.u32(), r.u8()) for _ in range(r.u16())]
            lines[line] = items
        regions = {}
        for _ in range(r.u16()):
            rid = r.u32()
            region = {
                "type": r.u8(),
                "parent": r.u32(),
                "line_start": r.u32(),
                "line_end": r.u32(),
                "step": r.i32(),
                "trip": r.i32(),
                "subs": r.ids(),
            }
            region["classes"] = [
                {
                    "id": r.u32(),
                    "equiv": r.u8(),
                    "items": r.ids(),
                    "classes": r.ids(),
                }
                for _ in range(r.u16())
            ]
            region["alias"] = [r.ids() for _ in range(r.u16())]
            region["lcdd"] = [
                (r.u32(), r.u32(), r.u8(), r.i32()) for _ in range(r.u16())
            ]
            region["refmod"] = [
                {
                    "kind": r.u8(),
                    "key": r.u32(),
                    "flags": r.u8(),
                    "ref": r.ids(),
                    "mod": r.ids(),
                }
                for _ in range(r.u16())
            ]
            regions[rid] = region
        entries[name] = {"root": root, "lines": lines, "regions": regions}
    assert r.pos == len(data), "trailing bytes"
    return {"source": source, "entries": entries}


@pytest.fixture(scope="module")
def compiled():
    bench = by_name("034.mdljdp2")
    return compile_source(bench.source, bench.name, CompileOptions(schedule=False))


def test_hand_decode_matches_model(compiled):
    decoded = hand_decode(encode_hli(compiled.hli))
    assert set(decoded["entries"]) == set(compiled.hli.entries)
    for name, entry in compiled.hli.entries.items():
        got = decoded["entries"][name]
        assert got["root"] == entry.root_region_id
        # line table
        for line, le in entry.line_table.entries.items():
            expected = [(iid, ty.value) for iid, ty in le.items]
            assert got["lines"][line] == expected
        # regions
        assert set(got["regions"]) == set(entry.regions)
        for rid, region in entry.regions.items():
            g = got["regions"][rid]
            assert g["type"] == region.region_type.value
            assert g["parent"] == (region.parent_id or 0)
            assert g["subs"] == region.sub_region_ids
            assert [c["id"] for c in g["classes"]] == [
                c.class_id for c in region.eq_classes
            ]
            for gc, c in zip(g["classes"], region.eq_classes):
                assert gc["items"] == c.member_items
                assert gc["classes"] == c.member_classes
                assert gc["equiv"] == c.equiv_type.value
            assert [set(a) for a in g["alias"]] == [
                set(a.class_ids) for a in region.alias_entries
            ]
            assert g["lcdd"] == [
                (
                    d.src_class,
                    d.dst_class,
                    d.dep_type.value,
                    d.distance if d.distance is not None else -1,
                )
                for d in region.lcdd_entries
            ]
            for gm, m in zip(g["refmod"], region.refmod_entries):
                assert gm["kind"] == m.key_kind.value
                assert gm["key"] == m.key_id
                assert bool(gm["flags"] & 1) == m.ref_all
                assert bool(gm["flags"] & 2) == m.mod_all
                assert gm["ref"] == m.ref_classes
                assert gm["mod"] == m.mod_classes


def test_spec_constants():
    """Magic values documented in FORMAT.md."""
    assert ItemType.LOAD.value == 0
    assert ItemType.STORE.value == 1
    assert ItemType.CALL.value == 2
    assert RegionType.UNIT.value == 0
    assert RegionType.LOOP.value == 1


def test_region_ids_start_at_one(compiled):
    """The parent_id=0 sentinel relies on region ids starting at 1."""
    for entry in compiled.hli.entries.values():
        assert all(rid >= 1 for rid in entry.regions)
