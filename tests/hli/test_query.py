"""HLI query API tests, over the Figure 2 example and call-heavy programs."""

import pytest

from repro import CompileOptions, compile_source
from repro.analysis.items import AccessKind
from repro.hli.query import CallAcc, EquivAcc, HLIQuery
from repro.hli.tables import RegionType


def compile_unit(src: str, fn: str = "f"):
    comp = compile_source(src, "q.c", CompileOptions(schedule=False))
    entry = comp.hli.entry(fn)
    unit = comp.frontend.units[fn]
    return HLIQuery(entry), unit


def item_by_ref(unit, text, kind=None):
    for it in unit.items:
        if it.ref is not None and str(it.ref) == text:
            if kind is None or it.kind is kind:
                return it.item_id
    raise AssertionError(text)


class TestEquivAcc:
    SRC = """int a[100];
int b[100];
int s;
void f() {
    int i;
    for (i = 0; i < 10; i++) {
        a[i] = a[i] + a[i+1] + b[i] + s;
        s = s + 1;
    }
}
"""

    @pytest.fixture()
    def ctx(self):
        return compile_unit(self.SRC)

    def test_same_location_definite(self, ctx):
        q, unit = ctx
        load = item_by_ref(unit, "a[i]", AccessKind.LOAD)
        store = item_by_ref(unit, "a[i]", AccessKind.STORE)
        assert q.get_equiv_acc(load, store) is EquivAcc.DEFINITE

    def test_shifted_subscript_none(self, ctx):
        q, unit = ctx
        store = item_by_ref(unit, "a[i]", AccessKind.STORE)
        shifted = item_by_ref(unit, "a[i+1]")
        assert q.get_equiv_acc(store, shifted) is EquivAcc.NONE

    def test_different_arrays_none(self, ctx):
        q, unit = ctx
        store = item_by_ref(unit, "a[i]", AccessKind.STORE)
        other = item_by_ref(unit, "b[i]")
        assert q.get_equiv_acc(store, other) is EquivAcc.NONE

    def test_scalar_definite(self, ctx):
        q, unit = ctx
        s_load = item_by_ref(unit, "s", AccessKind.LOAD)
        s_store = item_by_ref(unit, "s", AccessKind.STORE)
        assert q.get_equiv_acc(s_load, s_store) is EquivAcc.DEFINITE

    def test_unknown_item(self, ctx):
        q, unit = ctx
        store = item_by_ref(unit, "a[i]", AccessKind.STORE)
        assert q.get_equiv_acc(store, 9999) is EquivAcc.UNKNOWN

    def test_symmetric(self, ctx):
        q, unit = ctx
        store = item_by_ref(unit, "a[i]", AccessKind.STORE)
        shifted = item_by_ref(unit, "a[i+1]")
        assert q.get_equiv_acc(store, shifted) == q.get_equiv_acc(shifted, store)


class TestAliasQuery:
    SRC = """int x;
int y;
void f(int c) {
    int *p;
    if (c) p = &x; else p = &y;
    *p = 1;
    x = 2;
    y = 3;
}
"""

    def test_deref_aliases_target(self):
        q, unit = compile_unit(self.SRC)
        deref = item_by_ref(unit, "*p", AccessKind.STORE)
        x_store = item_by_ref(unit, "x", AccessKind.STORE)
        assert q.get_equiv_acc(deref, x_store) is EquivAcc.MAYBE
        assert q.get_alias(deref, x_store) is EquivAcc.MAYBE

    def test_distinct_scalars_not_aliased(self):
        q, unit = compile_unit(self.SRC)
        x_store = item_by_ref(unit, "x", AccessKind.STORE)
        y_store = item_by_ref(unit, "y", AccessKind.STORE)
        assert q.get_equiv_acc(x_store, y_store) is EquivAcc.NONE


class TestLCDDQuery:
    SRC = """int a[100];
void f() {
    int i;
    for (i = 1; i < 50; i++) {
        a[i] = a[i-1] + 1;
    }
}
"""

    def test_lcdd_found(self):
        q, unit = compile_unit(self.SRC)
        store = item_by_ref(unit, "a[i]", AccessKind.STORE)
        load = item_by_ref(unit, "a[i-1]")
        arcs = q.get_lcdd(store, load)
        assert arcs
        assert arcs[0].distance == 1

    def test_region_info(self):
        q, unit = compile_unit(self.SRC)
        store = item_by_ref(unit, "a[i]", AccessKind.STORE)
        info = q.get_region_info(store)
        assert info is not None
        assert info.region_type is RegionType.LOOP
        assert info.depth == 1
        assert info.loop_trip == 49


class TestCallAcc:
    SRC = """int counter;
int data[16];
void bump() { counter = counter + 1; }
int peek() { return counter; }
void f() {
    int i;
    data[3] = 7;
    bump();
    for (i = 0; i < 4; i++) {
        data[i] = data[i] + 1;
        peek();
    }
}
"""

    @pytest.fixture()
    def ctx(self):
        return compile_unit(self.SRC)

    def _call_item(self, unit, callee):
        for it in unit.items:
            if it.kind is AccessKind.CALL and it.callee == callee:
                return it.item_id
        raise AssertionError(callee)

    def test_call_does_not_touch_array(self, ctx):
        q, unit = ctx
        call = self._call_item(unit, "bump")
        data_store = item_by_ref(unit, "data[3]", AccessKind.STORE)
        assert q.get_call_acc(data_store, call) is CallAcc.NONE

    def test_call_in_subregion(self, ctx):
        q, unit = ctx
        call = self._call_item(unit, "peek")
        data_store = item_by_ref(unit, "data[3]", AccessKind.STORE)
        # peek only reads counter; data untouched even via the subregion entry
        assert q.get_call_acc(data_store, call) is CallAcc.NONE

    def test_unknown_call(self, ctx):
        q, unit = ctx
        data_store = item_by_ref(unit, "data[3]", AccessKind.STORE)
        assert q.get_call_acc(data_store, 12345) is CallAcc.UNKNOWN


class TestCallAccModRef:
    SRC = """int counter;
void bump() { counter = counter + 1; }
int f() {
    int t;
    counter = 5;
    bump();
    t = counter;
    return t;
}
"""

    def test_mod_detected(self):
        q, unit = compile_unit(self.SRC)
        call = next(
            it.item_id for it in unit.items if it.kind is AccessKind.CALL
        )
        counter_store = item_by_ref(unit, "counter", AccessKind.STORE)
        acc = q.get_call_acc(counter_store, call)
        assert acc in (CallAcc.REFMOD, CallAcc.MOD)
