"""Region tree construction and loop recognition tests."""

from repro.analysis.regions import (
    RegionKind,
    RegionTreeBuilder,
    common_region,
    recognize_loop,
)
from repro.frontend import ast_nodes as ast
from repro.frontend import parse_and_check


def build(src: str, fn_name: str = "f"):
    prog, _ = parse_and_check(src)
    fn = prog.function(fn_name)
    builder = RegionTreeBuilder()
    return builder.build(fn), fn, builder


class TestTreeShape:
    def test_flat_function_has_single_region(self):
        root, _, _ = build("void f() { int x; x = 1; }")
        assert root.kind is RegionKind.UNIT
        assert root.children == []

    def test_one_loop(self):
        root, _, _ = build("void f() { int i; for (i = 0; i < 4; i++) { } }")
        assert len(root.children) == 1
        assert root.children[0].kind is RegionKind.LOOP

    def test_nested_loops(self):
        root, _, _ = build(
            "void f() { int i, j;\n"
            "for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { } } }"
        )
        outer = root.children[0]
        assert len(outer.children) == 1
        assert outer.children[0].parent is outer

    def test_sequential_loops_are_siblings(self):
        root, _, _ = build(
            "void f() { int i;\n"
            "for (i = 0; i < 4; i++) { }\n"
            "for (i = 0; i < 4; i++) { } }"
        )
        assert len(root.children) == 2

    def test_loop_inside_if(self):
        root, _, _ = build(
            "void f(int n) { int i; if (n) { for (i = 0; i < 4; i++) { } } }"
        )
        assert len(root.children) == 1

    def test_region_ids_unique(self):
        root, _, _ = build(
            "void f() { int i, j;\n"
            "for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { } }\n"
            "while (i > 0) { i--; } }"
        )
        ids = [r.region_id for r in root.walk()]
        assert len(ids) == len(set(ids)) == 4

    def test_while_and_dowhile_create_regions(self):
        root, _, _ = build("void f() { int i; i = 3; while (i) i--; do i++; while (i < 2); }")
        assert len(root.children) == 2

    def test_common_region(self):
        root, _, _ = build(
            "void f() { int i, j;\n"
            "for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { } }\n"
            "for (i = 0; i < 4; i++) { } }"
        )
        inner = root.children[0].children[0]
        second = root.children[1]
        assert common_region(inner, second) is root
        assert common_region(inner, root.children[0]) is root.children[0]

    def test_ancestors_order(self):
        root, _, _ = build(
            "void f() { int i, j;\n"
            "for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { } } }"
        )
        inner = root.children[0].children[0]
        chain = list(inner.ancestors())
        assert chain[0] is inner and chain[-1] is root
        assert inner.depth() == 2


class TestLoopRecognition:
    def loop_stmt(self, body: str) -> ast.Stmt:
        prog, _ = parse_and_check(f"void f(int n) {{ int i; {body} }}")
        for s in ast.walk_stmts(prog.functions[0].body):
            if isinstance(s, (ast.For, ast.While, ast.DoWhile)):
                return s
        raise AssertionError("no loop found")

    def test_canonical_upward(self):
        info = recognize_loop(self.loop_stmt("for (i = 0; i < 10; i++) { }"))
        assert info.is_canonical
        assert info.lower.const == 0
        assert info.upper.const == 10
        assert info.step == 1
        assert info.trip_count() == 10
        assert list(info.iteration_range()) == list(range(10))

    def test_inclusive_bound(self):
        info = recognize_loop(self.loop_stmt("for (i = 1; i <= 8; i++) { }"))
        assert info.upper_inclusive
        assert info.trip_count() == 8

    def test_step_two(self):
        info = recognize_loop(self.loop_stmt("for (i = 0; i < 10; i += 2) { }"))
        assert info.step == 2
        assert info.trip_count() == 5

    def test_downward(self):
        info = recognize_loop(self.loop_stmt("for (i = 9; i > 0; i--) { }"))
        assert info.step == -1
        assert info.trip_count() == 9

    def test_i_equals_i_plus_c(self):
        info = recognize_loop(self.loop_stmt("for (i = 0; i < 12; i = i + 3) { }"))
        assert info.step == 3
        assert info.trip_count() == 4

    def test_decl_init(self):
        info = recognize_loop(self.loop_stmt("for (int k = 0; k < 5; k++) { }"))
        assert info.is_canonical
        assert info.var.name == "k"

    def test_symbolic_upper_bound(self):
        info = recognize_loop(self.loop_stmt("for (i = 0; i < n; i++) { }"))
        assert info.is_canonical
        assert info.trip_count() is None

    def test_while_not_canonical(self):
        info = recognize_loop(self.loop_stmt("while (i < 10) { i++; }"))
        assert not info.is_canonical

    def test_weird_step_not_canonical(self):
        info = recognize_loop(self.loop_stmt("for (i = 0; i < 10; i = i * 2) { }"))
        assert info.step is None

    def test_empty_range(self):
        info = recognize_loop(self.loop_stmt("for (i = 5; i < 5; i++) { }"))
        assert info.trip_count() == 0


class TestModifiedScalars:
    def test_loop_var_is_modified(self):
        root, fn, _ = build("void f() { int i; for (i = 0; i < 4; i++) { } }")
        loop = root.children[0]
        names = {s.name for s in loop.modified_scalars}
        assert "i" in names

    def test_body_assignment_propagates_up(self):
        root, _, _ = build(
            "int g;\nvoid f() { int i, t; for (i = 0; i < 4; i++) { t = i; } }",
        )
        loop = root.children[0]
        assert "t" in {s.name for s in loop.modified_scalars}
        assert "t" in {s.name for s in root.modified_scalars}

    def test_decl_init_counts_as_modification(self):
        root, _, _ = build(
            "void f() { int i; for (i = 0; i < 4; i++) { int t = i; } }"
        )
        loop = root.children[0]
        assert "t" in {s.name for s in loop.modified_scalars}

    def test_unmodified_symbol_absent(self):
        root, _, _ = build(
            "void f(int n) { int i; for (i = 0; i < n; i++) { } }"
        )
        loop = root.children[0]
        assert "n" not in {s.name for s in loop.modified_scalars}
