"""Interprocedural REF/MOD analysis tests."""

from repro.analysis.alias import TOP, analyze_points_to
from repro.analysis.refmod import analyze_refmod
from repro.frontend import parse_and_check


def effects(src: str):
    prog, table = parse_and_check(src)
    pts = analyze_points_to(prog, table)
    return prog, analyze_refmod(prog, table, pts)


def names(objset):
    return {o.name for o in objset if hasattr(o, "name")}


class TestLocalEffects:
    def test_reads_global(self):
        _, eff = effects("int g;\nint f() { return g; }")
        assert names(eff["f"].ref) == {"g"}
        assert eff["f"].mod == set()

    def test_writes_global(self):
        _, eff = effects("int g;\nvoid f() { g = 1; }")
        assert names(eff["f"].mod) == {"g"}

    def test_array_effects(self):
        _, eff = effects("int a[4];\nint b[4];\nvoid f() { a[0] = b[1]; }")
        assert names(eff["f"].ref) == {"b"}
        assert names(eff["f"].mod) == {"a"}

    def test_pure_locals_invisible(self):
        _, eff = effects("int f() { int x; x = 3; return x; }")
        assert eff["f"].ref == set() and eff["f"].mod == set()

    def test_deref_through_points_to(self):
        src = "int a[4];\nvoid g(int *p) { *p = 1; }\nvoid f() { g(a); }"
        _, eff = effects(src)
        assert "a" in names(eff["g"].mod)


class TestTransitiveEffects:
    def test_callee_effects_propagate(self):
        src = (
            "int g;\n"
            "void inner() { g = 1; }\n"
            "void outer() { inner(); }"
        )
        _, eff = effects(src)
        assert names(eff["outer"].mod) == {"g"}

    def test_recursion_terminates(self):
        src = (
            "int g;\n"
            "void r(int n) { g = g + n; if (n > 0) r(n - 1); }"
        )
        _, eff = effects(src)
        assert "g" in names(eff["r"].mod)

    def test_mutual_recursion(self):
        src = (
            "int x;\nint y;\n"
            "void a(int n) { x = n; if (n) b(n - 1); }\n"
            "void b(int n) { y = n; if (n) a(n - 1); }"
        )
        _, eff = effects(src)
        assert {"x", "y"} <= names(eff["a"].mod)
        assert {"x", "y"} <= names(eff["b"].mod)


class TestExternals:
    def test_pure_external_empty(self):
        _, eff = effects("double f(double x) { return sqrt(x); }")
        assert eff["sqrt"].ref == set()
        assert eff["sqrt"].mod == set()
        assert eff["f"].mod == set()

    def test_impure_external_clobbers(self):
        _, eff = effects('void f() { printf("hi"); }')
        assert eff["printf"].clobbers_all
        assert eff["f"].clobbers_all

    def test_getchar_is_pure_for_memory(self):
        _, eff = effects("int f() { return getchar(); }")
        assert not eff["f"].clobbers_all
