"""The paper's Figure 2 worked example, reproduced end to end.

These tests pin the exact region structure, equivalence classes, alias
entries, and LCDD arcs the paper shows for its example program.
"""

import pytest

from repro.hli.tables import DepType, EquivType, RegionType


@pytest.fixture(scope="module")
def entry(fig2_compilation):
    return fig2_compilation.hli.entry("foo")


def region_of_kind(entry, rid):
    return entry.regions[rid]


def class_labels(region):
    return {c.label for c in region.eq_classes}


class TestRegionStructure:
    def test_four_regions(self, entry):
        assert len(entry.regions) == 4

    def test_root_is_unit(self, entry):
        root = entry.regions[entry.root_region_id]
        assert root.region_type is RegionType.UNIT
        assert len(root.sub_region_ids) == 2

    def test_second_loop_has_inner_loop(self, entry):
        root = entry.regions[entry.root_region_id]
        second = entry.regions[root.sub_region_ids[1]]
        assert len(second.sub_region_ids) == 1
        inner = entry.regions[second.sub_region_ids[0]]
        assert inner.region_type is RegionType.LOOP
        assert inner.sub_region_ids == []

    def test_loop_metadata(self, entry):
        root = entry.regions[entry.root_region_id]
        first = entry.regions[root.sub_region_ids[0]]
        assert first.loop_step == 1
        assert first.loop_trip == 10


class TestRegion1Classes:
    """Region 1 partitions everything into sum, a[0..9], b[0..9]."""

    def test_three_classes(self, entry):
        root = entry.regions[entry.root_region_id]
        assert len(root.eq_classes) == 3

    def test_classes_cover_all_by_base(self, entry):
        root = entry.regions[entry.root_region_id]
        labels = class_labels(root)
        assert labels == {"sum", "a[*]", "b[*]"}

    def test_sum_class_definite(self, entry):
        root = entry.regions[entry.root_region_id]
        sum_cls = next(c for c in root.eq_classes if c.label == "sum")
        assert sum_cls.equiv_type is EquivType.DEFINITE

    def test_array_classes_maybe(self, entry):
        root = entry.regions[entry.root_region_id]
        for label in ("a[*]", "b[*]"):
            cls = next(c for c in root.eq_classes if c.label == label)
            assert cls.equiv_type is EquivType.MAYBE


class TestRegion3:
    """The second i loop: b[0] stays separate, aliased with merged b[*]."""

    @pytest.fixture()
    def region3(self, entry):
        root = entry.regions[entry.root_region_id]
        return entry.regions[root.sub_region_ids[1]]

    def test_b0_is_its_own_class(self, region3):
        labels = class_labels(region3)
        assert "b[0]" in labels

    def test_merged_b_class_is_maybe(self, region3):
        b_merged = next(c for c in region3.eq_classes if c.label == "b[*]")
        assert b_merged.equiv_type is EquivType.MAYBE
        assert len(b_merged.member_classes) == 2  # b[j] and b[j-1] lifted

    def test_alias_between_b0_and_merged_b(self, region3):
        b0 = next(c for c in region3.eq_classes if c.label == "b[0]")
        bm = next(c for c in region3.eq_classes if c.label == "b[*]")
        assert any(
            {b0.class_id, bm.class_id} <= set(a.class_ids)
            for a in region3.alias_entries
        )

    def test_a_classes_merged_definite(self, region3):
        # a[i] in the loop body merges with the a[i] items of the j loop
        a_cls = [c for c in region3.eq_classes if c.label.startswith("a")]
        assert len(a_cls) == 1
        assert a_cls[0].equiv_type is EquivType.DEFINITE


class TestRegion4LCDD:
    """The j loop carries b[j] -> b[j-1] at distance 1 (paper Section 2.2.3)."""

    @pytest.fixture()
    def region4(self, entry):
        root = entry.regions[entry.root_region_id]
        r3 = entry.regions[root.sub_region_ids[1]]
        return entry.regions[r3.sub_region_ids[0]]

    def test_distance_one_arc(self, region4):
        arcs = [
            d
            for d in region4.lcdd_entries
            if d.dep_type is DepType.DEFINITE and d.distance == 1
        ]
        assert arcs, "expected the b[j] -> b[j-1] distance-1 arc"

    def test_direction_normalized_forward(self, region4):
        # the source class is the one containing the b[j] store
        bj = next(c for c in region4.eq_classes if c.label == "b[j]")
        bj1 = next(c for c in region4.eq_classes if c.label == "b[j-1]")
        arc = next(
            d
            for d in region4.lcdd_entries
            if {d.src_class, d.dst_class} == {bj.class_id, bj1.class_id}
        )
        assert arc.src_class == bj.class_id

    def test_no_lcdd_between_disjoint_subscripts(self, region4):
        bj = next(c for c in region4.eq_classes if c.label == "b[j]")
        # b[j] load and store are in the same class: no self LCDD at distance 0
        self_arcs = [
            d
            for d in region4.lcdd_entries
            if d.src_class == bj.class_id and d.dst_class == bj.class_id
        ]
        assert not self_arcs


class TestLineTable:
    def test_fig2_item_counts(self, entry):
        # line 8: sum = sum + a[i]  -> load sum, load a[i], store sum
        assert len(entry.line_table.items_on_line(8)) == 3
        # line 13: b[j] = b[j] + b[j-1] -> 2 loads + 1 store
        assert len(entry.line_table.items_on_line(13)) == 3

    def test_total_items(self, entry):
        assert entry.line_table.num_items == 11
