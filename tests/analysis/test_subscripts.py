"""Affine subscript extraction tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.frontend import ast_nodes as ast
from repro.frontend import parse_and_check
from repro.analysis.subscripts import Affine, affine_of
from repro.frontend.symbols import StorageClass, Symbol
from repro.frontend.typesys import INT


def sym(name: str) -> Symbol:
    return Symbol(name=name, ty=INT, storage=StorageClass.LOCAL)


def subscript_of(expr_text: str) -> ast.Expr:
    """Parse ``a[<expr_text>]`` inside a context with i, j, n, d declared."""
    src = (
        "int a[100];\ndouble d;\n"
        "void f(int n) { int i, j; i = 0; j = 0; "
        f"a[{expr_text}] = 1; }}"
    )
    prog, _ = parse_and_check(src)
    assign = prog.functions[0].body.stmts[-1].expr
    return assign.target.index


class TestAffineArithmetic:
    def test_constant(self):
        a = Affine.constant(5)
        assert a.is_constant and a.const == 5

    def test_var_plus_const(self):
        i = sym("i")
        a = Affine.var(i) + Affine.constant(3)
        assert a.coeff(i) == 1 and a.const == 3

    def test_sub_cancels(self):
        i = sym("i")
        a = Affine.var(i, 2) - Affine.var(i, 2)
        assert a.is_constant and a.const == 0

    def test_scale(self):
        i = sym("i")
        a = (Affine.var(i) + Affine.constant(1)).scale(4)
        assert a.coeff(i) == 4 and a.const == 4

    def test_neg(self):
        i = sym("i")
        a = -(Affine.var(i) + Affine.constant(2))
        assert a.coeff(i) == -1 and a.const == -2

    def test_drop(self):
        i, j = sym("i"), sym("j")
        a = Affine.var(i) + Affine.var(j) + Affine.constant(7)
        assert a.drop(i).coeff(i) == 0
        assert a.drop(i).coeff(j) == 1

    def test_key_is_canonical(self):
        i, j = sym("i"), sym("j")
        a = Affine.var(i) + Affine.var(j)
        b = Affine.var(j) + Affine.var(i)
        assert a.key() == b.key()

    def test_evaluate(self):
        i, j = sym("i"), sym("j")
        a = Affine.var(i, 2) + Affine.var(j, -1) + Affine.constant(3)
        assert a.evaluate({i: 5, j: 4}) == 9

    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-5, 5))
    def test_arith_matches_evaluation(self, ci, cj, k):
        i, j = sym("i"), sym("j")
        a = Affine.var(i, ci) + Affine.var(j, cj)
        b = a.scale(k) - Affine.constant(1)
        env = {i: 3, j: -2}
        assert b.evaluate(env) == (ci * 3 + cj * -2) * k - 1


class TestExtraction:
    def test_plain_var(self):
        form = affine_of(subscript_of("i"))
        assert form is not None and form.const == 0
        assert len(form.terms) == 1

    def test_var_plus_const(self):
        form = affine_of(subscript_of("i + 3"))
        assert form is not None and form.const == 3

    def test_var_minus_const(self):
        form = affine_of(subscript_of("i - 1"))
        assert form is not None and form.const == -1

    def test_scaled(self):
        form = affine_of(subscript_of("2 * i + j"))
        assert form is not None
        assert sorted(c for _, c in form.terms) == [1, 2]

    def test_const_times_paren(self):
        form = affine_of(subscript_of("4 * (i + 1)"))
        assert form is not None and form.const == 4

    def test_shift_as_scale(self):
        form = affine_of(subscript_of("i << 2"))
        assert form is not None
        assert form.terms[0][1] == 4

    def test_param_symbol_ok(self):
        form = affine_of(subscript_of("i * 8 + n"))
        assert form is not None

    def test_var_times_var_not_affine(self):
        assert affine_of(subscript_of("i * j")) is None

    def test_division_not_affine(self):
        assert affine_of(subscript_of("i / 2")) is None

    def test_call_not_affine(self):
        assert affine_of(subscript_of("abs(i)")) is None

    def test_array_load_not_affine(self):
        assert affine_of(subscript_of("a[i]")) is None

    def test_negation(self):
        form = affine_of(subscript_of("-i + 9"))
        assert form is not None and form.const == 9
        assert form.terms[0][1] == -1
