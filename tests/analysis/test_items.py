"""ITEMGEN tests: what generates items and in which canonical order."""

from repro.analysis.builder import build_hli
from repro.analysis.items import AccessKind, AccessRole, symbolic_ref, walk_stmt_accesses
from repro.frontend import ast_nodes as ast
from repro.frontend import parse_and_check
from repro.hli.tables import ItemType


def items_of(src: str, fn: str = "f"):
    prog, table = parse_and_check(src)
    _, info = build_hli(prog, table)
    return info.units[fn].items


def line_table_of(src: str, fn: str = "f"):
    prog, table = parse_and_check(src)
    hli, _ = build_hli(prog, table)
    return hli.entry(fn).line_table


class TestWhatGeneratesItems:
    def test_register_locals_generate_nothing(self):
        items = items_of("void f() { int x, y; x = 1; y = x + 2; }")
        assert items == []

    def test_global_scalar_generates_items(self):
        items = items_of("int g;\nvoid f() { g = g + 1; }")
        kinds = [it.kind for it in items]
        assert kinds == [AccessKind.LOAD, AccessKind.STORE]

    def test_array_access_generates_items(self):
        items = items_of("int a[4];\nvoid f() { a[0] = a[1]; }")
        assert [it.kind for it in items] == [AccessKind.LOAD, AccessKind.STORE]

    def test_local_array_generates_items(self):
        items = items_of("void f() { int a[4]; a[0] = 1; }")
        assert [it.kind for it in items] == [AccessKind.STORE]

    def test_address_taken_local_generates_items(self):
        items = items_of("void f() { int x; int *p; p = &x; x = 3; }")
        assert AccessKind.STORE in {it.kind for it in items}

    def test_call_generates_call_item(self):
        items = items_of("void g() { }\nvoid f() { g(); }")
        assert [it.kind for it in items] == [AccessKind.CALL]
        assert items[0].callee == "g"

    def test_deref_generates_item(self):
        items = items_of("int g;\nvoid f() { int *p; p = &g; *p = 1; }")
        stores = [it for it in items if it.kind is AccessKind.STORE]
        assert any(it.ref is not None and it.ref.is_deref for it in stores)

    def test_stack_args_beyond_four(self):
        src = (
            "int g6(int a, int b, int c, int d, int e, int f) { return a + f; }\n"
            "void f() { g6(1, 2, 3, 4, 5, 6); }"
        )
        items = items_of(src)
        stack_stores = [it for it in items if it.role is AccessRole.STACK_ARG]
        assert len(stack_stores) == 2  # args 5 and 6
        # and the callee loads its stack params at entry
        callee_items = items_of(src, "g6")
        entry_loads = [it for it in callee_items if it.role is AccessRole.ENTRY_PARAM]
        assert len(entry_loads) == 2

    def test_item_ids_unique_and_ascending(self):
        items = items_of(
            "int a[8];\nint s;\nvoid f() { int i; for (i = 0; i < 8; i++) s = s + a[i]; }"
        )
        ids = [it.item_id for it in items]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)


class TestCanonicalOrder:
    def test_value_before_store(self):
        items = items_of("int a[4];\nint b[4];\nvoid f() { a[0] = b[1]; }")
        assert items[0].kind is AccessKind.LOAD  # b[1] read first
        assert str(items[0].ref) == "b[1]"
        assert items[1].kind is AccessKind.STORE

    def test_compound_assign_load_then_store(self):
        items = items_of("int a[4];\nvoid f() { a[2] += 5; }")
        assert [it.kind for it in items] == [AccessKind.LOAD, AccessKind.STORE]
        assert str(items[0].ref) == str(items[1].ref) == "a[2]"

    def test_binary_lhs_before_rhs(self):
        items = items_of("int a[4];\nint b[4];\nint s;\nvoid f() { s = a[0] + b[0]; }")
        assert str(items[0].ref) == "a[0]"
        assert str(items[1].ref) == "b[0]"

    def test_index_expr_loads_before_element(self):
        items = items_of("int a[8];\nint k;\nvoid f() { int x; x = a[k]; }")
        # k is a global scalar: loaded while computing the address
        assert str(items[0].ref) == "k"
        assert str(items[1].ref) == "a[k]"

    def test_call_args_left_to_right(self):
        src = (
            "int a[4];\nint b[4];\nint g(int x, int y) { return x + y; }\n"
            "void f() { g(a[0], b[0]); }"
        )
        items = items_of(src)
        assert [str(it.ref) for it in items[:2]] == ["a[0]", "b[0]"]
        assert items[2].kind is AccessKind.CALL

    def test_for_line_order_init_cond_step(self):
        src = "int n;\nint a[64];\nvoid f() { int i; for (i = n; i < n; i++) { } }"
        lt = line_table_of(src)
        # both init and cond load n on the for line, in that order
        line = 3
        entries = lt.items_on_line(line)
        assert [ty for _, ty in entries] == [ItemType.LOAD, ItemType.LOAD]

    def test_line_table_matches_item_lines(self):
        src = "int a[4];\nvoid f() {\n    a[0] = 1;\n    a[1] = 2;\n}"
        lt = line_table_of(src)
        assert len(lt.items_on_line(3)) == 1
        assert len(lt.items_on_line(4)) == 1


class TestSymbolicRefs:
    def refs(self, src, fn="f"):
        return [it.ref for it in items_of(src, fn) if it.ref is not None]

    def test_scalar_ref(self):
        (r,) = self.refs("int g;\nvoid f() { g = 1; }")
        assert r.base.name == "g"
        assert not r.is_deref and r.subscripts == ()

    def test_array_affine_subscript(self):
        src = "int a[100];\nvoid f() { int i; for (i = 0; i < 4; i++) a[2*i+1] = 0; }"
        refs = self.refs(src)
        (r,) = refs
        assert r.subscripts[0] is not None
        assert r.subscripts[0].const == 1

    def test_multidim_subscripts(self):
        src = "double m[4][8];\nvoid f() { int i, j; i = j = 0; m[i][j+1] = 0.0; }"
        refs = [r for r in self.refs(src) if r.base and r.base.name == "m"]
        (r,) = refs
        assert len(r.subscripts) == 2

    def test_pointer_deref_ref(self):
        src = "int g;\nvoid f() { int *p; p = &g; *p = 2; }"
        refs = self.refs(src)
        deref = [r for r in refs if r.is_deref]
        assert deref and deref[0].base.name == "p"

    def test_pointer_offset_deref(self):
        src = "int a[8];\nvoid f() { int *p; p = a; *(p + 3) = 1; }"
        refs = self.refs(src)
        deref = [r for r in refs if r.is_deref]
        assert deref[0].deref_offset is not None
        assert deref[0].deref_offset.const == 3

    def test_epochs_distinguish_mutation(self):
        src = (
            "int a[16];\nvoid f() { int j; j = 1;\n"
            "    a[j] = 1;\n"
            "    j = j + 1;\n"
            "    a[j] = 2;\n"
            "}"
        )
        items = items_of(src)
        stores = [it for it in items if it.kind is AccessKind.STORE]
        assert len(stores) == 2
        assert stores[0].epochs != stores[1].epochs
