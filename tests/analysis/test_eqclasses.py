"""Equivalence-class partition invariants (paper Section 2.2.1).

The defining properties: within every region, the classes are mutually
exclusive and jointly total — every memory access item inside the region
(including items of sub-regions, via lifted classes) is represented by
exactly one class.  Checked on hand-written programs, the whole
benchmark suite, and generated stencils.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_source
from repro.analysis.items import AccessKind
from repro.hli.tables import EquivType, HLIEntry
from repro.workloads.generators import StencilParams, stencil_program
from repro.workloads.suite import BENCHMARKS


def compile_entry(src: str, fn: str = "f"):
    comp = compile_source(src, "eq.c", CompileOptions(schedule=False))
    return comp.hli.entry(fn), comp.frontend.units[fn]


def check_partition_invariants(entry: HLIEntry, unit) -> None:
    """Assert exclusivity + totality for every region of a unit."""
    mem_items = {
        it.item_id for it in unit.items if it.kind is not AccessKind.CALL
    }

    def items_represented(region_id: int) -> list[int]:
        region = entry.regions[region_id]
        out: list[int] = []
        for cls in region.eq_classes:
            out.extend(cls.member_items)
            for sub_cls in cls.member_classes:
                out.extend(class_items[sub_cls])
        return out

    # resolve class -> transitive item list bottom-up
    class_items: dict[int, list[int]] = {}
    for region in entry.iter_regions_postorder():
        for cls in region.eq_classes:
            acc = list(cls.member_items)
            for sub in cls.member_classes:
                acc.extend(class_items[sub])
            class_items[cls.class_id] = acc

    for region in entry.regions.values():
        represented = items_represented(region.region_id)
        # exclusivity: no item represented twice within one region
        assert len(represented) == len(set(represented)), (
            f"region {region.region_id}: duplicated representation"
        )
    # totality at the root: every memory item is represented exactly once
    root_items = items_represented(entry.root_region_id)
    assert set(root_items) == mem_items
    assert len(root_items) == len(mem_items)


class TestHandWritten:
    def test_flat_function(self):
        entry, unit = compile_entry(
            "int a[4];\nint g;\nvoid f() { a[0] = g; a[1] = g; g = a[2]; }"
        )
        check_partition_invariants(entry, unit)

    def test_nested_loops(self):
        entry, unit = compile_entry(
            """int m[64];
void f() {
    int i, j;
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            m[i * 8 + j] = m[i * 8 + j] + 1;
        }
    }
}
"""
        )
        check_partition_invariants(entry, unit)

    def test_identical_refs_one_class(self):
        entry, unit = compile_entry("int g;\nvoid f() { g = g + g; }")
        root = entry.regions[entry.root_region_id]
        assert len(root.eq_classes) == 1
        assert len(root.eq_classes[0].member_items) == 3
        assert root.eq_classes[0].equiv_type is EquivType.DEFINITE

    def test_distinct_constant_subscripts_distinct_classes(self):
        entry, unit = compile_entry("int a[4];\nvoid f() { a[0] = 1; a[1] = 2; }")
        root = entry.regions[entry.root_region_id]
        assert len(root.eq_classes) == 2
        # and provably-disjoint constant elements are NOT aliased
        assert root.alias_entries == []

    def test_unknown_subscripts_aliased_not_merged(self):
        entry, unit = compile_entry(
            "int a[16];\nint k;\nvoid f() { a[k] = 1; k = k + 1; a[k] = 2; }"
        )
        root = entry.regions[entry.root_region_id]
        classes = [c for c in root.eq_classes if len(c.member_items) == 1]
        a_classes = [c for c in root.eq_classes if c.label.startswith("a")]
        assert len(a_classes) == 2
        assert any(len(e.class_ids) >= 2 for e in root.alias_entries)


class TestSuiteInvariants:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_benchmark_partitions(self, bench):
        comp = compile_source(bench.source, bench.name, CompileOptions(schedule=False))
        for name, unit in comp.frontend.units.items():
            check_partition_invariants(comp.hli.entry(name), unit)


class TestGeneratedInvariants:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=8, max_value=64),
        st.integers(min_value=1, max_value=3),
    )
    def test_stencil_partitions(self, arrays, size, radius):
        src = stencil_program(
            StencilParams(arrays=arrays, size=size, iters=1, radius=min(radius, size // 3))
        )
        comp = compile_source(src, "st.c", CompileOptions(schedule=False))
        for name, unit in comp.frontend.units.items():
            check_partition_invariants(comp.hli.entry(name), unit)
