"""Dependence test unit tests: ZIV / strong SIV / GCD / bounds cases."""

from repro.analysis.builder import build_hli
from repro.analysis.depend import (
    DepResult,
    intra_iteration_relation,
    loop_carried_dependence,
)
from repro.analysis.items import AccessKind
from repro.frontend import parse_and_check


def loop_context(body: str, decls: str = "int a[100];\nint b[100];", bound="10",
                 init="0", step="i++"):
    """Compile a one-loop function; return (items by label, loop region)."""
    src = f"""{decls}
void f(int n) {{
    int i;
    for (i = {init}; i < {bound}; {step}) {{
{body}
    }}
}}
"""
    prog, table = parse_and_check(src)
    hli, info = build_hli(prog, table)
    unit = info.units["f"]
    loop = unit.root.children[0]
    items = [
        it
        for it in unit.items
        if it.kind in (AccessKind.LOAD, AccessKind.STORE) and it.ref is not None
    ]
    return items, loop


def find(items, text, kind=None):
    for it in items:
        if str(it.ref) == text and (kind is None or it.kind is kind):
            return it
    raise AssertionError(f"no item {text!r} in {[str(i.ref) for i in items]}")


class TestLoopCarried:
    def test_strong_siv_distance_one(self):
        items, loop = loop_context("        a[i] = a[i-1] + 1;")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i-1]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.DEF
        assert res.distance == 1
        assert res.src_first  # write at iteration k, read at k+1

    def test_strong_siv_distance_three(self):
        items, loop = loop_context("        a[i] = a[i-3];")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i-3]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.distance == 3

    def test_reverse_direction(self):
        items, loop = loop_context("        a[i] = a[i+2];")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i+2]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.DEF
        assert res.distance == 2
        assert not res.src_first  # the read happens in the earlier iteration

    def test_same_subscript_no_carried_dep(self):
        items, loop = loop_context("        a[i] = a[i] + 1;")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i]", AccessKind.LOAD)
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.NONE

    def test_distance_beyond_trip_count(self):
        items, loop = loop_context("        a[i] = a[i-50];")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i-50]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.NONE  # trip 10 < distance 50

    def test_step_two_odd_offset_independent(self):
        items, loop = loop_context("        a[i] = a[i-1];", bound="20", step="i += 2")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i-1]")
        # offset 1 not divisible by step 2 -> never collides across iterations
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.NONE

    def test_step_two_even_offset_dependent(self):
        items, loop = loop_context("        a[i] = a[i-4];", bound="20", step="i += 2")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i-4]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.DEF
        assert res.distance == 2

    def test_scaled_coefficients_gcd_reject(self):
        items, loop = loop_context("        a[2*i] = a[2*i + 1];")
        w = find(items, "a[2*i]", AccessKind.STORE)
        r = find(items, "a[2*i+1]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.NONE  # even vs odd indices

    def test_weak_siv_bounded_overlap(self):
        items, loop = loop_context("        a[i] = a[2*i];")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[2*i]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.MAYBE  # i == 2i' has solutions in range

    def test_weak_siv_banerjee_reject(self):
        items, loop = loop_context("        a[i] = a[2*i + 53];")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[2*i+53]")
        # 2i'+53 ranges over [53, 71]; i over [0, 9]: disjoint
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.NONE

    def test_scalar_always_carried(self):
        items, loop = loop_context("        b[0] = b[0] + i;", decls="int b[4];")
        w = find(items, "b[0]", AccessKind.STORE)
        res = loop_carried_dependence(w.ref, w.ref, loop)
        assert res.result is DepResult.DEF
        assert res.any_distance

    def test_different_bases_maybe(self):
        # the affine machinery refuses cross-base questions (alias analysis owns them)
        items, loop = loop_context("        a[i] = b[i];")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "b[i]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.MAYBE

    def test_symbolic_bound_still_exact_for_strong_siv(self):
        items, loop = loop_context("        a[i] = a[i-1];", bound="n")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i-1]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.DEF
        assert res.distance == 1

    def test_nonaffine_subscript_maybe(self):
        items, loop = loop_context("        a[i*i] = a[i] + 1;")
        w = find(items, "a[?]", AccessKind.STORE)
        r = find(items, "a[i]")
        res = loop_carried_dependence(w.ref, r.ref, loop)
        assert res.result is DepResult.MAYBE


class TestIntraIteration:
    def test_identical_refs_definite(self):
        items, loop = loop_context("        a[i] = a[i] + 1;")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i]", AccessKind.LOAD)
        assert intra_iteration_relation(w.ref, r.ref, loop) is DepResult.DEF

    def test_constant_offset_disjoint(self):
        items, loop = loop_context("        a[i] = a[i+1];")
        w = find(items, "a[i]", AccessKind.STORE)
        r = find(items, "a[i+1]")
        assert intra_iteration_relation(w.ref, r.ref, loop) is DepResult.NONE

    def test_constant_vs_var_in_range(self):
        items, loop = loop_context("        a[5] = a[i];")
        w = find(items, "a[5]", AccessKind.STORE)
        r = find(items, "a[i]")
        # coincide exactly when i == 5, which is inside [0, 10)
        assert intra_iteration_relation(w.ref, r.ref, loop) is DepResult.MAYBE

    def test_constant_vs_var_out_of_range(self):
        items, loop = loop_context("        a[77] = a[i];")
        w = find(items, "a[77]", AccessKind.STORE)
        r = find(items, "a[i]")
        assert intra_iteration_relation(w.ref, r.ref, loop) is DepResult.NONE

    def test_constants_equal(self):
        items, loop = loop_context("        a[3] = a[3] + a[4];")
        w = find(items, "a[3]", AccessKind.STORE)
        r4 = find(items, "a[4]")
        assert intra_iteration_relation(w.ref, w.ref, loop) is DepResult.DEF
        assert intra_iteration_relation(w.ref, r4.ref, loop) is DepResult.NONE
