"""Points-to analysis tests."""

from repro.analysis.alias import TOP, HeapObject, analyze_points_to
from repro.frontend import parse_and_check
from repro.frontend.symbols import Symbol


def solve(src: str):
    prog, table = parse_and_check(src)
    return prog, analyze_points_to(prog, table)


def sym_named(prog, fn, name):
    from repro.frontend import ast_nodes as ast

    f = prog.function(fn)
    for s in ast.walk_stmts(f.body):
        if isinstance(s, ast.VarDecl) and s.name == name:
            return s.symbol
    for p in f.params:
        if p.name == name:
            return p.symbol
    raise AssertionError(name)


def global_sym(prog, name):
    for g in prog.globals:
        if g.name == name:
            return g.symbol
    raise AssertionError(name)


class TestBasicPointsTo:
    def test_address_of(self):
        prog, pts = solve("int x;\nvoid f() { int *p; p = &x; *p = 1; }")
        p = sym_named(prog, "f", "p")
        x = global_sym(prog, "x")
        assert pts.targets(p) == {x}

    def test_copy_propagation(self):
        prog, pts = solve(
            "int x;\nvoid f() { int *p; int *q; p = &x; q = p; *q = 1; }"
        )
        q = sym_named(prog, "f", "q")
        x = global_sym(prog, "x")
        assert x in pts.targets(q)

    def test_two_targets(self):
        prog, pts = solve(
            "int x;\nint y;\n"
            "void f(int c) { int *p; if (c) p = &x; else p = &y; *p = 1; }"
        )
        p = sym_named(prog, "f", "p")
        names = {t.name for t in pts.targets(p) if isinstance(t, Symbol)}
        assert names == {"x", "y"}

    def test_array_decay(self):
        prog, pts = solve("int a[8];\nvoid f() { int *p; p = a; *p = 1; }")
        p = sym_named(prog, "f", "p")
        a = global_sym(prog, "a")
        assert a in pts.targets(p)

    def test_pointer_arithmetic_keeps_base(self):
        prog, pts = solve("int a[8];\nvoid f() { int *p; p = a + 2; *p = 1; }")
        p = sym_named(prog, "f", "p")
        a = global_sym(prog, "a")
        assert a in pts.targets(p)

    def test_malloc_creates_heap_object(self):
        prog, pts = solve("void f() { int *p; p = malloc(16); *p = 1; }")
        p = sym_named(prog, "f", "p")
        targets = pts.targets(p)
        assert any(isinstance(t, HeapObject) for t in targets)

    def test_uninitialized_pointer_is_top(self):
        prog, pts = solve("int x;\nvoid f(int *p) { *p = 1; x = 2; }")
        p = sym_named(prog, "f", "p")
        x = global_sym(prog, "x")
        # no call sites constrain p: it may point anywhere addressable
        assert x in pts.targets(p)


class TestInterprocedural:
    def test_arg_flows_to_param(self):
        src = (
            "int a[8];\nint b[8];\n"
            "void g(int *p) { *p = 1; }\n"
            "void f() { g(a); }"
        )
        prog, pts = solve(src)
        p = sym_named(prog, "g", "p")
        a = global_sym(prog, "a")
        b = global_sym(prog, "b")
        assert a in pts.targets(p)
        assert b not in pts.targets(p)

    def test_multiple_call_sites_union(self):
        src = (
            "int a[8];\nint b[8];\n"
            "void g(int *p) { *p = 1; }\n"
            "void f() { g(a); g(b); }"
        )
        prog, pts = solve(src)
        p = sym_named(prog, "g", "p")
        names = {t.name for t in pts.targets(p) if isinstance(t, Symbol)}
        assert {"a", "b"} <= names

    def test_returned_pointer(self):
        src = (
            "int a[8];\n"
            "int *pick() { return a; }\n"
            "void f() { int *p; p = pick(); *p = 1; }"
        )
        prog, pts = solve(src)
        p = sym_named(prog, "f", "p")
        a = global_sym(prog, "a")
        assert a in pts.targets(p)

    def test_may_alias_symbols(self):
        src = (
            "int x;\nint y;\n"
            "void f() { int *p; int *q; p = &x; q = &x; *p = *q; }"
        )
        prog, pts = solve(src)
        p = sym_named(prog, "f", "p")
        q = sym_named(prog, "f", "q")
        assert pts.may_alias_symbols(p, q)

    def test_no_alias_between_disjoint(self):
        src = (
            "int x;\nint y;\n"
            "void f() { int *p; int *q; p = &x; q = &y; *p = *q; }"
        )
        prog, pts = solve(src)
        p = sym_named(prog, "f", "p")
        q = sym_named(prog, "f", "q")
        assert not pts.may_alias_symbols(p, q)
