"""Unit tests for the lifted-reference overlap machinery.

When a sub-region's class is lifted into an enclosing region, its
references range over all iterations of the intervening loops — the
``may_overlap`` / ``class_loop_carried`` tests must quantify those
induction variables existentially and independently per side.  These are
the rules behind Figure 2's ``b[0]`` / ``b[0..9]`` alias entry.
"""

import pytest

from repro.analysis.builder import build_hli
from repro.analysis.depend import (
    DepResult,
    MemberRef,
    class_loop_carried,
    may_overlap,
)
from repro.analysis.items import AccessKind
from repro.frontend import parse_and_check


def build_nested(body_inner: str, outer_extra: str = "", inner_range=(1, 10)):
    src = f"""int a[200];
int b[200];
void f() {{
    int i, j;
    for (i = 0; i < 10; i++) {{
{outer_extra}
        for (j = {inner_range[0]}; j < {inner_range[1]}; j++) {{
{body_inner}
        }}
    }}
}}
"""
    prog, table = parse_and_check(src)
    _, info = build_hli(prog, table)
    unit = info.units["f"]
    outer = unit.root.children[0]
    inner = outer.children[0]
    return unit, outer, inner


def member(unit, text, home, kind=None):
    for it in unit.items:
        if it.ref is not None and str(it.ref) == text:
            if kind is None or it.kind is kind:
                return MemberRef(
                    ref=it.ref,
                    is_store=it.kind is AccessKind.STORE,
                    home=home,
                    epochs=it.epochs,
                )
    raise AssertionError(text)


class TestMayOverlapLifted:
    def test_fixed_element_vs_lifted_range_overlapping(self):
        # b[0] in the outer loop vs b[j-1] lifted from j in 1..10 (= b[0..8])
        unit, outer, inner = build_nested(
            "            b[j] = b[j] + b[j-1];",
            outer_extra="        a[i] = b[0];",
        )
        b0 = member(unit, "b[0]", outer)
        bj1 = member(unit, "b[j-1]", inner)
        assert may_overlap(b0, bj1, outer) is DepResult.MAYBE

    def test_fixed_element_vs_disjoint_lifted_range(self):
        # b[150] vs b[j] for j in 1..10: provably disjoint
        unit, outer, inner = build_nested(
            "            b[j] = b[j] + 1;",
            outer_extra="        a[i] = b[150];",
        )
        b150 = member(unit, "b[150]", outer)
        bj = member(unit, "b[j]", inner, AccessKind.STORE)
        assert may_overlap(b150, bj, outer) is DepResult.NONE

    def test_identical_lifted_sets_definite(self):
        # two b[j] refs lifted to the outer region cover identical sets
        unit, outer, inner = build_nested("            b[j] = b[j] + 1;")
        ld = member(unit, "b[j]", inner, AccessKind.LOAD)
        st = member(unit, "b[j]", inner, AccessKind.STORE)
        assert may_overlap(ld, st, outer) is DepResult.DEF

    def test_shifted_lifted_sets_maybe(self):
        # b[j] vs b[j-1] as sets over j: overlapping but not identical
        unit, outer, inner = build_nested("            b[j] = b[j-1];")
        st = member(unit, "b[j]", inner, AccessKind.STORE)
        ld = member(unit, "b[j-1]", inner)
        assert may_overlap(st, ld, outer) is DepResult.MAYBE

    def test_gcd_separates_parity(self):
        # 2j vs 2j+1: even vs odd elements never meet, even as sets
        unit, outer, inner = build_nested("            b[2*j] = b[2*j+1];")
        st = member(unit, "b[2*j]", inner, AccessKind.STORE)
        ld = member(unit, "b[2*j+1]", inner)
        assert may_overlap(st, ld, outer) is DepResult.NONE

    def test_different_bases_handled_elsewhere(self):
        unit, outer, inner = build_nested("            a[j] = b[j];")
        a = member(unit, "a[j]", inner, AccessKind.STORE)
        b = member(unit, "b[j]", inner)
        # cross-base comparisons are the alias analysis' job
        assert may_overlap(a, b, outer) is DepResult.MAYBE


class TestClassLoopCarriedLifted:
    def test_identical_lifted_recur_every_outer_iteration(self):
        unit, outer, inner = build_nested("            b[j] = b[j] + 1;")
        st = member(unit, "b[j]", inner, AccessKind.STORE)
        res = class_loop_carried(st, st, outer)
        assert res.result is DepResult.DEF
        assert res.any_distance

    def test_outer_indexed_ref_no_carried_dep(self):
        # a[i] inside the j loop, tested against the i loop: i-indexed, no recurrence
        unit, outer, inner = build_nested("            a[i] = a[i] + b[j];")
        ai = member(unit, "a[i]", inner, AccessKind.STORE)
        res = class_loop_carried(ai, ai, outer)
        assert res.result is DepResult.NONE

    def test_mixed_subscript_conservative(self):
        # a[i + j] may revisit elements across outer iterations
        unit, outer, inner = build_nested("            a[i + j] = 1;")
        aij = member(unit, "a[i+j]", inner, AccessKind.STORE)
        res = class_loop_carried(aij, aij, outer)
        assert res.result is DepResult.MAYBE

    def test_inner_test_still_exact(self):
        # within the inner loop itself, exact strong-SIV distances survive
        unit, outer, inner = build_nested("            b[j] = b[j-3];", inner_range=(3, 10))
        st = member(unit, "b[j]", inner, AccessKind.STORE)
        ld = member(unit, "b[j-3]", inner)
        res = class_loop_carried(st, ld, inner)
        assert res.result is DepResult.DEF
        assert res.distance == 3
