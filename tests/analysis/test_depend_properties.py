"""Property-based soundness tests for the dependence machinery.

The oracle is brute force: enumerate the loop's iteration space and the
actual addresses touched, then check that whenever two references *do*
collide, the analytical test did NOT answer NONE (and whenever it answers
DEF with a distance, that distance is real).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.builder import build_hli
from repro.analysis.depend import (
    DepResult,
    intra_iteration_relation,
    loop_carried_dependence,
)
from repro.analysis.items import AccessKind
from repro.frontend import parse_and_check


def compile_loop(c1: int, k1: int, c2: int, k2: int, lo: int, hi: int, step: int):
    """Build ``for (i = lo; i < hi; i += step) a[c1*i + k1] = a[c2*i + k2];``."""

    def idx(c, k):
        return f"{c} * i + {k}"

    src = f"""int a[4096];
void f() {{
    int i;
    for (i = {lo}; i < {hi}; i += {step}) {{
        a[{idx(c1, k1)}] = a[{idx(c2, k2)}] + 1;
    }}
}}
"""
    prog, table = parse_and_check(src)
    hli, info = build_hli(prog, table)
    unit = info.units["f"]
    loop = unit.root.children[0]
    store = next(it for it in unit.items if it.kind is AccessKind.STORE)
    load = next(it for it in unit.items if it.kind is AccessKind.LOAD)
    return store, load, loop


coeffs = st.integers(min_value=-3, max_value=3)
offsets = st.integers(min_value=0, max_value=40)
bounds = st.tuples(
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=3),
)


@settings(max_examples=150, deadline=None)
@given(coeffs, offsets, coeffs, offsets, bounds)
def test_loop_carried_soundness(c1, k1, c2, k2, b):
    """If two refs truly collide across iterations, the verdict is not NONE."""
    lo, span, step = b
    hi = lo + span
    # keep subscripts in bounds for every iteration
    k1 += 200
    k2 += 200
    store, load, loop = compile_loop(c1, k1, c2, k2, lo, hi, step)
    res = loop_carried_dependence(store.ref, load.ref, loop)

    iters = list(range(lo, hi, step))
    collides = False
    real_distances = set()
    for x, i1 in enumerate(iters):
        for y, i2 in enumerate(iters):
            if x == y:
                continue
            if c1 * i1 + k1 == c2 * i2 + k2:
                collides = True
                real_distances.add(abs(y - x))
    if collides:
        assert res.result is not DepResult.NONE, (
            f"missed collision: store a[{c1}i+{k1}] load a[{c2}i+{k2}] "
            f"iters={iters} verdict={res}"
        )
    if res.result is DepResult.DEF and res.distance is not None and not res.any_distance:
        assert res.distance in real_distances, (
            f"claimed distance {res.distance}, real {real_distances}"
        )


@settings(max_examples=150, deadline=None)
@given(coeffs, offsets, coeffs, offsets, bounds)
def test_intra_iteration_soundness(c1, k1, c2, k2, b):
    """Within one iteration: DEF must mean always-equal, NONE never-equal."""
    lo, span, step = b
    hi = lo + span
    k1 += 200
    k2 += 200
    store, load, loop = compile_loop(c1, k1, c2, k2, lo, hi, step)
    verdict = intra_iteration_relation(store.ref, load.ref, loop)

    iters = list(range(lo, hi, step))
    equal_counts = sum(1 for i in iters if c1 * i + k1 == c2 * i + k2)
    if verdict is DepResult.DEF:
        assert equal_counts == len(iters), "DEF but not always equal"
    if verdict is DepResult.NONE:
        assert equal_counts == 0, "NONE but they collide in some iteration"


@settings(max_examples=80, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=-6, max_value=6),
    st.integers(min_value=2, max_value=12),
)
def test_strong_siv_distance_exact(coeff, delta, trip):
    """For equal coefficients the reported distance matches arithmetic."""
    k1 = 100
    k2 = 100 + coeff * delta  # collision at iteration distance |delta|
    store, load, loop = compile_loop(coeff, k1, coeff, k2, 0, trip, 1)
    res = loop_carried_dependence(store.ref, load.ref, loop)
    if delta == 0:
        assert res.result is DepResult.NONE  # loop-independent only
    elif abs(delta) < trip:
        assert res.result is DepResult.DEF
        assert res.distance == abs(delta)
    else:
        assert res.result is DepResult.NONE
