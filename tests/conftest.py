"""Shared fixtures: canonical example programs and cached compilations."""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode

#: The worked example of the paper's Figure 2 (line numbers matter: the
#: b[j] loop etc. reproduce the region/class structure in the figure).
FIG2_SOURCE = """\
int a[10];
int b[10];
int sum;

void foo() {
    int i, j;
    for (i = 0; i < 10; i++) {
        sum = sum + a[i];
    }
    for (i = 0; i < 10; i++) {
        a[i] = b[0] + 1;
        for (j = 1; j < 10; j++) {
            b[j] = b[j] + b[j-1];
            a[i] = a[i] + sum;
        }
    }
}
"""

SIMPLE_MAIN = """\
int g[16];
int total;

int main() {
    int i;
    for (i = 0; i < 16; i++) {
        g[i] = i * 2;
    }
    for (i = 0; i < 16; i++) {
        total = total + g[i];
    }
    return total;
}
"""


@pytest.fixture(scope="session")
def fig2_source() -> str:
    return FIG2_SOURCE


@pytest.fixture(scope="session")
def fig2_compilation():
    return compile_source(FIG2_SOURCE, "fig2.c", CompileOptions(schedule=False))


@pytest.fixture(scope="session")
def simple_compilation():
    return compile_source(SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.COMBINED))
