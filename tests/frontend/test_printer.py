"""Pretty-printer tests: parse → print → parse round trips."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse
from repro.frontend.printer import pretty
from repro.workloads.generators import StencilParams, stencil_program
from repro.workloads.suite import BENCHMARKS


def normalize(node):
    """Canonical nested-tuple form of an AST, modulo printer-normalized
    syntax: DeclGroups flatten to their decls, and loop/branch bodies are
    wrapped in blocks (the printer always braces them)."""
    if isinstance(node, (int, float, str, bool)) or node is None:
        return node
    if isinstance(node, (list, tuple)):
        out = []
        for x in node:
            if isinstance(x, ast.DeclGroup):
                out.extend(normalize(d) for d in x.decls)
            else:
                out.append(normalize(x))
        return tuple(out)
    if isinstance(node, ast.Block):
        return ("block", normalize(node.stmts))
    if isinstance(node, ast.DeclGroup):
        return ("block", normalize(node.decls))
    if hasattr(node, "__dataclass_fields__"):
        fields = []
        for name in sorted(node.__dataclass_fields__):
            if name in ("line", "symbol", "ty", "item_id", "loop_id"):
                continue
            value = getattr(node, name)
            # the printer braces single-statement bodies
            if name in ("then", "otherwise", "body") and value is not None:
                if not isinstance(value, ast.Block):
                    value = ast.Block(line=0, stmts=[value])
            fields.append((name, normalize(value)))
        return (type(node).__name__, tuple(fields))
    return node


def roundtrip(src: str) -> None:
    first = parse(src)
    printed = pretty(first)
    second = parse(printed)
    assert normalize(first) == normalize(second), printed


class TestRoundTrip:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_benchmarks_roundtrip(self, bench):
        roundtrip(bench.source)

    def test_generated_roundtrip(self):
        roundtrip(stencil_program(StencilParams()))

    @pytest.mark.parametrize(
        "src",
        [
            "int x = 1 + 2 * 3;",
            "int y = (1 + 2) * 3;",
            "int z = 10 - 4 - 3;",
            "int w = 1 << 2 < 3;",
            "int v = -x + ~y;",
            "int c = a ? b : d ? e : f;".replace("a", "p").replace("b", "q")
            .replace("d", "r").replace("e", "s").replace("f", "t"),
        ],
        ids=["prec", "parens", "leftassoc", "shiftcmp", "unary", "ternary"],
    )
    def test_expression_fidelity(self, src):
        decls = "int p; int q; int r; int s; int t; int x; int y;\n"
        roundtrip(decls + src)

    def test_struct_and_pointers(self):
        roundtrip(
            "struct n { int v; };\n"
            "struct n node;\n"
            "int *p;\n"
            "double m[3][4];\n"
            "int f(int *q) { return *q + node.v; }"
        )

    def test_control_flow(self):
        roundtrip(
            "int f(int n) {\n"
            "  int i, s; s = 0;\n"
            "  for (i = 0; i < n; i++) { if (i % 2) continue; s += i; }\n"
            "  while (s > 100) s -= 10;\n"
            "  do s++; while (s < 5);\n"
            "  return s;\n"
            "}"
        )

    def test_printed_output_is_readable(self):
        prog = parse("int g;\nvoid f() { g = 1; }")
        text = pretty(prog)
        assert "int g;" in text
        assert "void f(void)" in text


class TestSemanticsPreserved:
    def test_printed_program_runs_identically(self):
        from repro import CompileOptions, compile_source
        from repro.machine.executor import execute

        bench = BENCHMARKS[3]  # 129.compress
        printed = pretty(parse(bench.source))
        a = execute(
            compile_source(bench.source, "orig.c", CompileOptions()).rtl,
            collect_trace=False,
        )
        b = execute(
            compile_source(printed, "printed.c", CompileOptions()).rtl,
            collect_trace=False,
        )
        assert a.ret == b.ret
