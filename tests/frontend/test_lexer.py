"""Lexer unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frontend.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_input_gives_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "hello"

    def test_identifier_with_underscore_and_digits(self):
        (tok,) = tokenize("_foo_42")[:-1]
        assert tok.kind is TokenKind.IDENT

    def test_keywords_are_not_identifiers(self):
        assert kinds("int") == [TokenKind.KW_INT]
        assert kinds("while") == [TokenKind.KW_WHILE]
        assert kinds("return") == [TokenKind.KW_RETURN]

    def test_keyword_prefix_is_identifier(self):
        (tok,) = tokenize("integer")[:-1]
        assert tok.kind is TokenKind.IDENT

    def test_int_literal(self):
        (tok,) = tokenize("1234")[:-1]
        assert tok.kind is TokenKind.INT_LIT
        assert tok.value == 1234

    def test_hex_literal(self):
        (tok,) = tokenize("0x1F")[:-1]
        assert tok.value == 31

    def test_float_literal(self):
        (tok,) = tokenize("3.25")[:-1]
        assert tok.kind is TokenKind.FLOAT_LIT
        assert tok.value == 3.25

    def test_float_with_exponent(self):
        (tok,) = tokenize("1e3")[:-1]
        assert tok.kind is TokenKind.FLOAT_LIT
        assert tok.value == 1000.0

    def test_float_negative_exponent(self):
        (tok,) = tokenize("2.5e-2")[:-1]
        assert tok.value == 0.025

    def test_float_f_suffix(self):
        (tok,) = tokenize("1.5f")[:-1]
        assert tok.kind is TokenKind.FLOAT_LIT
        assert tok.value == 1.5

    def test_char_literal(self):
        (tok,) = tokenize("'a'")[:-1]
        assert tok.kind is TokenKind.CHAR_LIT
        assert tok.value == ord("a")

    def test_char_escape(self):
        (tok,) = tokenize(r"'\n'")[:-1]
        assert tok.value == 10

    def test_string_literal(self):
        (tok,) = tokenize('"hi there"')[:-1]
        assert tok.kind is TokenKind.STRING_LIT
        assert tok.value == "hi there"

    def test_string_with_escapes(self):
        (tok,) = tokenize(r'"a\tb\n"')[:-1]
        assert tok.value == "a\tb\n"


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("&&", TokenKind.ANDAND),
            ("||", TokenKind.OROR),
            ("<<", TokenKind.LSHIFT),
            (">>", TokenKind.RSHIFT),
            ("+=", TokenKind.PLUS_ASSIGN),
            ("++", TokenKind.PLUSPLUS),
            ("--", TokenKind.MINUSMINUS),
            ("->", TokenKind.ARROW),
        ],
    )
    def test_multichar_operator(self, text, kind):
        assert kinds(text) == [kind]

    def test_maximal_munch(self):
        # "a+++b" lexes as a ++ + b in C
        assert kinds("a+++b") == [
            TokenKind.IDENT,
            TokenKind.PLUSPLUS,
            TokenKind.PLUS,
            TokenKind.IDENT,
        ]

    def test_less_then_assign(self):
        assert kinds("a < = b") == [
            TokenKind.IDENT,
            TokenKind.LT,
            TokenKind.ASSIGN,
            TokenKind.IDENT,
        ]


class TestTriviaAndPositions:
    def test_line_numbers(self):
        toks = tokenize("a\nb\n  c")
        assert [t.pos.line for t in toks[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].pos.col == 1
        assert toks[1].pos.col == 4

    def test_line_comment_skipped(self):
        assert kinds("a // comment\nb") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment_skipped(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_block_comment_tracks_lines(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].pos.line == 2

    def test_preprocessor_line_skipped(self):
        assert kinds("#include <stdio.h>\nint") == [TokenKind.KW_INT]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"no end')

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestLexerProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_int_literal_roundtrip(self, n):
        (tok,) = tokenize(str(n))[:-1]
        assert tok.value == n

    @given(
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu")),
            min_size=1,
            max_size=12,
        )
    )
    def test_alpha_text_lexes_to_words(self, s):
        from repro.frontend.tokens import KEYWORDS

        toks = tokenize(s)[:-1]
        assert len(toks) == 1
        expected = KEYWORDS.get(s, TokenKind.IDENT)
        assert toks[0].kind is expected

    @given(st.lists(st.sampled_from(["a", "+", "1", "(", ")", "*", ";"]), max_size=30))
    def test_token_concatenation_never_crashes(self, parts):
        text = " ".join(parts)
        toks = tokenize(text)
        assert toks[-1].kind is TokenKind.EOF
        assert len(toks) == len(parts) + 1
