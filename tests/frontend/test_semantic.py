"""Semantic analysis unit tests."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend import parse_and_check
from repro.frontend.errors import SemanticError
from repro.frontend.symbols import StorageClass
from repro.frontend.typesys import DOUBLE, INT, PointerType


def check(src: str):
    return parse_and_check(src)


class TestDeclarations:
    def test_global_symbol_storage(self):
        prog, _ = check("int g;\nvoid f() { g = 1; }")
        assert prog.globals[0].symbol.storage is StorageClass.GLOBAL

    def test_static_symbol_storage(self):
        prog, _ = check("static int s;\nvoid f() { s = 1; }")
        assert prog.globals[0].symbol.storage is StorageClass.STATIC

    def test_local_symbol_storage(self):
        prog, _ = check("void f() { int x; x = 1; }")
        assert prog.functions[0].body.stmts[0].symbol.storage is StorageClass.LOCAL

    def test_param_symbol(self):
        prog, _ = check("int f(int a) { return a; }")
        assert prog.functions[0].params[0].symbol.storage is StorageClass.PARAM

    def test_duplicate_global_rejected(self):
        with pytest.raises(SemanticError):
            check("int x;\nint x;")

    def test_duplicate_local_rejected(self):
        with pytest.raises(SemanticError):
            check("void f() { int x; int x; }")

    def test_shadowing_allowed_in_inner_scope(self):
        check("int x;\nvoid f() { int x; { int y; y = x; } }")

    def test_duplicate_function_rejected(self):
        with pytest.raises(SemanticError):
            check("void f() { }\nvoid f() { }")

    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError):
            check("void f() { y = 1; }")

    def test_out_of_scope_use(self):
        with pytest.raises(SemanticError):
            check("void f() { { int x; } x = 1; }")


class TestTypes:
    def _expr_type(self, decls: str, expr: str):
        prog, _ = check(f"{decls}\nvoid f() {{ probe_target = {expr}; }}".replace(
            "probe_target", "probe"
        ))
        stmt = prog.functions[0].body.stmts[-1]
        return stmt.expr.value.ty

    def test_int_arithmetic(self):
        prog, _ = check("int a;\nint b;\nvoid f() { a = a + b; }")
        e = prog.functions[0].body.stmts[0].expr
        assert e.value.ty == INT

    def test_mixed_promotes_to_double(self):
        prog, _ = check("int a;\ndouble d;\nvoid f() { d = a + d; }")
        e = prog.functions[0].body.stmts[0].expr
        assert e.value.ty == DOUBLE

    def test_comparison_is_int(self):
        prog, _ = check("double d;\nvoid f() { int x; x = d < 1.0; }")
        e = prog.functions[0].body.stmts[1].expr
        assert e.value.ty == INT

    def test_array_indexing_type(self):
        prog, _ = check("double m[4][5];\nvoid f() { double x; x = m[1][2]; }")
        e = prog.functions[0].body.stmts[1].expr
        assert e.value.ty == DOUBLE

    def test_address_of_type(self):
        prog, _ = check("void f() { int x; int *p; p = &x; }")
        e = prog.functions[0].body.stmts[2].expr
        assert isinstance(e.value.ty, PointerType)

    def test_deref_type(self):
        prog, _ = check("int *p;\nvoid f() { int x; x = *p; }")
        e = prog.functions[0].body.stmts[1].expr
        assert e.value.ty == INT

    def test_call_return_type(self):
        prog, _ = check("double g() { return 1.0; }\nvoid f() { double x; x = g(); }")
        e = prog.functions[1].body.stmts[1].expr
        assert e.value.ty == DOUBLE

    def test_external_math(self):
        prog, _ = check("void f() { double x; x = sqrt(2.0); }")


class TestChecks:
    def test_subscript_non_array_rejected(self):
        with pytest.raises(SemanticError):
            check("int x;\nvoid f() { x = x[0]; }")

    def test_float_subscript_rejected(self):
        with pytest.raises(SemanticError):
            check("int a[4];\nvoid f() { double d; a[d] = 1; }")

    def test_assign_to_array_rejected(self):
        with pytest.raises(SemanticError):
            check("int a[4];\nint b[4];\nvoid f() { a = b; }")

    def test_assign_to_literal_rejected(self):
        with pytest.raises(SemanticError):
            check("void f() { 3 = 4; }")

    def test_return_value_from_void_rejected(self):
        with pytest.raises(SemanticError):
            check("void f() { return 3; }")

    def test_missing_return_value_rejected(self):
        with pytest.raises(SemanticError):
            check("int f() { return; }")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError):
            check("void f() { break; }")

    def test_wrong_arity_rejected(self):
        with pytest.raises(SemanticError):
            check("int g(int a) { return a; }\nvoid f() { g(1, 2); }")

    def test_unknown_call_rejected(self):
        with pytest.raises(SemanticError):
            check("void f() { mystery(); }")

    def test_deref_non_pointer_rejected(self):
        with pytest.raises(SemanticError):
            check("int x;\nvoid f() { x = *x; }")

    def test_field_of_non_struct_rejected(self):
        with pytest.raises(SemanticError):
            check("int x;\nvoid f() { x = x.field; }")


class TestAddressTaken:
    def test_address_of_marks_symbol(self):
        prog, _ = check("void f() { int x; int *p; p = &x; }")
        x = prog.functions[0].body.stmts[0].symbol
        assert x.address_taken
        assert x.in_memory

    def test_plain_local_not_in_memory(self):
        prog, _ = check("void f() { int x; x = 1; }")
        x = prog.functions[0].body.stmts[0].symbol
        assert not x.address_taken
        assert not x.in_memory

    def test_global_always_in_memory(self):
        prog, _ = check("int g;\nvoid f() { g = 1; }")
        assert prog.globals[0].symbol.in_memory

    def test_local_array_in_memory(self):
        prog, _ = check("void f() { int a[4]; a[0] = 1; }")
        assert prog.functions[0].body.stmts[0].symbol.in_memory

    def test_mutual_recursion_allowed(self):
        check(
            "int odd(int n);\n".replace("int odd(int n);\n", "")
            + "int even(int n) { if (n == 0) return 1; return oddp(n - 1); }\n"
            "int oddp(int n) { if (n == 0) return 0; return even(n - 1); }"
        )
