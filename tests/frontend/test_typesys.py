"""Type system unit tests."""

from repro.frontend.typesys import (
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    FunctionType,
    PointerType,
    StructType,
    common_arith_type,
)


class TestScalarTypes:
    def test_sizes(self):
        assert INT.size() == 4
        assert FLOAT.size() == 4
        assert DOUBLE.size() == 8
        assert CHAR.size() == 1
        assert VOID.size() == 0

    def test_predicates(self):
        assert INT.is_integer and not INT.is_float
        assert DOUBLE.is_float and not DOUBLE.is_integer
        assert VOID.is_void and not VOID.is_scalar
        assert INT.is_scalar


class TestPointerTypes:
    def test_pointer_size_is_word(self):
        assert PointerType(DOUBLE).size() == 4

    def test_pointer_is_scalar_and_pointer(self):
        p = PointerType(INT)
        assert p.is_pointer and p.is_scalar

    def test_str(self):
        assert str(PointerType(INT)) == "int*"


class TestArrayTypes:
    def test_1d_size(self):
        assert ArrayType(INT, (10,)).size() == 40

    def test_2d_size(self):
        assert ArrayType(DOUBLE, (3, 4)).size() == 96

    def test_strides_row_major(self):
        a = ArrayType(INT, (3, 4, 5))
        assert a.strides() == (20, 5, 1)

    def test_is_array(self):
        assert ArrayType(INT, (2,)).is_array
        assert not ArrayType(INT, (2,)).is_scalar


class TestStructTypes:
    def test_field_offsets(self):
        st = StructType("p", (("x", INT), ("y", INT), ("z", DOUBLE)))
        assert st.field_offset("x") == 0
        assert st.field_offset("y") == 4
        assert st.field_offset("z") == 8

    def test_field_type(self):
        st = StructType("p", (("x", INT), ("d", DOUBLE)))
        assert st.field_type("d") == DOUBLE

    def test_size(self):
        st = StructType("p", (("x", INT), ("d", DOUBLE)))
        assert st.size() == 12

    def test_missing_field_raises(self):
        st = StructType("p", (("x", INT),))
        try:
            st.field_offset("nope")
            assert False
        except KeyError:
            pass


class TestArithConversions:
    def test_int_int(self):
        assert common_arith_type(INT, INT) == INT

    def test_int_double(self):
        assert common_arith_type(INT, DOUBLE) == DOUBLE
        assert common_arith_type(DOUBLE, INT) == DOUBLE

    def test_float_double(self):
        assert common_arith_type(FLOAT, DOUBLE) == DOUBLE

    def test_char_promotes_to_int(self):
        assert common_arith_type(CHAR, CHAR) == INT

    def test_pointer_wins(self):
        p = PointerType(INT)
        assert common_arith_type(p, INT) == p


class TestFunctionTypes:
    def test_str(self):
        ft = FunctionType(INT, (INT, DOUBLE))
        assert str(ft) == "int(int, double)"
