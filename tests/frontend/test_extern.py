"""``extern`` declarations: the front-end surface the linker builds on."""

import pytest

from repro.frontend import parse_and_check
from repro.frontend.errors import CompileError
from repro.frontend.symbols import StorageClass


class TestExternVariables:
    def test_extern_global_is_marked(self):
        _, table = parse_and_check(
            "extern int remote;\nint main() { return remote; }\n", "a.c"
        )
        sym = table.global_scope.lookup("remote")
        assert sym is not None
        assert sym.is_extern
        assert sym.storage is StorageClass.GLOBAL
        assert sym.in_memory

    def test_defined_global_is_not_extern(self):
        _, table = parse_and_check("int local;\nint main() { return local; }\n", "a.c")
        assert not table.global_scope.lookup("local").is_extern

    def test_extern_array_keeps_element_count(self):
        _, table = parse_and_check(
            "extern int tab[32];\nint main() { return tab[0]; }\n", "a.c"
        )
        sym = table.global_scope.lookup("tab")
        assert sym.is_extern
        assert sym.ty.is_array
        assert sym.ty.dims == (32,)
        assert sym.ty.size() == 128


class TestExternFunctions:
    def test_prototype_without_body_is_external(self):
        _, table = parse_and_check(
            "extern int f(int k);\nint main() { return f(1); }\n", "a.c"
        )
        fsym = table.functions["f"]
        assert fsym.external
        assert not fsym.defined

    def test_definition_satisfies_earlier_prototype(self):
        _, table = parse_and_check(
            "extern int f(int k);\n"
            "int f(int k) { return k + 1; }\n"
            "int main() { return f(1); }\n",
            "a.c",
        )
        fsym = table.functions["f"]
        assert fsym.defined
        assert not fsym.external

    def test_arity_checked_for_defined_functions(self):
        with pytest.raises(CompileError):
            parse_and_check(
                "int f(int k) { return k; }\nint main() { return f(1, 2); }\n", "a.c"
            )

    def test_extern_prototype_arity_is_lenient(self):
        # K&R-style leniency: an external body we cannot see may take
        # more than the prototype says; the linker reconciles for real
        _, table = parse_and_check(
            "extern int f(int k);\nint main() { return f(1, 2); }\n", "a.c"
        )
        assert table.functions["f"].external
