"""Parser unit tests."""

import pytest

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import ParseError
from repro.frontend.parser import parse
from repro.frontend.typesys import ArrayType, PointerType


def first_fn(src: str) -> ast.FuncDef:
    return parse(src).functions[0]


def body_stmt(src_body: str, idx: int = 0) -> ast.Stmt:
    fn = first_fn("void f() {\n" + src_body + "\n}")
    return fn.body.stmts[idx]


class TestTopLevel:
    def test_global_scalar(self):
        prog = parse("int x;")
        assert prog.globals[0].name == "x"

    def test_global_with_init(self):
        prog = parse("int x = 42;")
        assert isinstance(prog.globals[0].init, ast.IntLit)
        assert prog.globals[0].init.value == 42

    def test_global_array(self):
        prog = parse("double m[4][8];")
        ty = prog.globals[0].ty
        assert isinstance(ty, ArrayType)
        assert ty.dims == (4, 8)

    def test_global_pointer(self):
        prog = parse("int *p;")
        assert isinstance(prog.globals[0].ty, PointerType)

    def test_multiple_declarators(self):
        prog = parse("int a, b, c;")
        assert [g.name for g in prog.globals] == ["a", "b", "c"]

    def test_static_global(self):
        prog = parse("static int s;")
        assert prog.globals[0].is_static

    def test_function_definition(self):
        fn = first_fn("int add(int a, int b) { return a + b; }")
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_param_list(self):
        fn = first_fn("int f(void) { return 0; }")
        assert fn.params == []

    def test_array_param_decays_to_pointer(self):
        fn = first_fn("int f(int a[10]) { return a[0]; }")
        assert isinstance(fn.params[0].ty, PointerType)

    def test_struct_definition(self):
        prog = parse("struct point { int x; int y; };")
        assert prog.structs[0].name == "point"
        assert [f[0] for f in prog.structs[0].fields] == ["x", "y"]

    def test_struct_variable(self):
        prog = parse("struct point { int x; int y; };\nstruct point origin;")
        assert str(prog.globals[0].ty) == "struct point"


class TestStatements:
    def test_if_else(self):
        stmt = body_stmt("if (1) { } else { }")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        stmt = body_stmt("if (1) if (2) ; else ;")
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is None
        assert isinstance(stmt.then, ast.If)
        assert stmt.then.otherwise is not None

    def test_for_loop_parts(self):
        stmt = body_stmt("for (i = 0; i < 10; i++) ;")
        assert isinstance(stmt, ast.For)
        assert stmt.init is not None
        assert isinstance(stmt.cond, ast.Binary)
        assert isinstance(stmt.step, ast.IncDec)

    def test_for_with_decl_init(self):
        stmt = body_stmt("for (int i = 0; i < 3; i++) ;")
        assert isinstance(stmt.init, ast.VarDecl)

    def test_empty_for(self):
        stmt = body_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_while(self):
        stmt = body_stmt("while (x) x--;")
        assert isinstance(stmt, ast.While)

    def test_do_while(self):
        stmt = body_stmt("do x--; while (x);")
        assert isinstance(stmt, ast.DoWhile)

    def test_break_continue(self):
        fn = first_fn("void f() { while (1) { break; continue; } }")
        loop = fn.body.stmts[0]
        inner = loop.body.stmts
        assert isinstance(inner[0], ast.Break)
        assert isinstance(inner[1], ast.Continue)

    def test_decl_group(self):
        stmt = body_stmt("int i, j, k;")
        assert isinstance(stmt, ast.DeclGroup)
        assert [d.name for d in stmt.decls] == ["i", "j", "k"]

    def test_return_void(self):
        stmt = body_stmt("return;")
        assert isinstance(stmt, ast.Return)
        assert stmt.value is None


class TestExpressions:
    def _expr(self, text: str) -> ast.Expr:
        stmt = body_stmt(f"x = {text};")
        assert isinstance(stmt, ast.ExprStmt)
        return stmt.expr.value

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert e.op is ast.BinOp.ADD
        assert e.rhs.op is ast.BinOp.MUL

    def test_precedence_shift_vs_compare(self):
        e = self._expr("1 << 2 < 3")
        assert e.op is ast.BinOp.LT
        assert e.lhs.op is ast.BinOp.SHL

    def test_left_associativity(self):
        e = self._expr("10 - 4 - 3")
        assert e.op is ast.BinOp.SUB
        assert e.lhs.op is ast.BinOp.SUB

    def test_parenthesized(self):
        e = self._expr("(1 + 2) * 3")
        assert e.op is ast.BinOp.MUL

    def test_unary_minus_folds_literal(self):
        e = self._expr("-5")
        assert isinstance(e, ast.IntLit)
        assert e.value == -5

    def test_nested_index(self):
        e = self._expr("m[i][j]")
        assert isinstance(e, ast.Index)
        assert isinstance(e.base, ast.Index)

    def test_call_with_args(self):
        e = self._expr("f(1, 2, 3)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 3

    def test_address_of(self):
        e = self._expr("&y")
        assert isinstance(e, ast.Unary)
        assert e.op is ast.UnaryOp.ADDR

    def test_deref(self):
        e = self._expr("*p")
        assert e.op is ast.UnaryOp.DEREF

    def test_ternary(self):
        e = self._expr("a ? b : c")
        assert isinstance(e, ast.Conditional)

    def test_compound_assign(self):
        stmt = body_stmt("x += 2;")
        assert stmt.expr.op is ast.AssignOp.ADD

    def test_field_access(self):
        e = self._expr("pt.x")
        assert isinstance(e, ast.FieldAccess)
        assert not e.arrow

    def test_arrow_access(self):
        e = self._expr("pp->x")
        assert e.arrow

    def test_cast_is_erased(self):
        e = self._expr("(double) n")
        assert isinstance(e, ast.Name)

    def test_line_annotations(self):
        prog = parse("int x;\nvoid f() {\n  x = 1;\n}\n")
        stmt = prog.functions[0].body.stmts[0]
        assert stmt.line == 3


class TestParseErrors:
    @pytest.mark.parametrize(
        "src",
        [
            "int f() { return 1 }",  # missing semicolon
            "int f() { if 1 return; }",  # missing parens
            "int f(",  # truncated
            "int f() { x = ; }",  # missing operand
            "int 3x;",  # bad declarator
            "struct unknown_s v;",  # unknown struct
        ],
    )
    def test_rejects(self, src):
        with pytest.raises(ParseError):
            parse(src)
