"""Exporter formats: chrome trace_event, flat stats, text tree."""

from __future__ import annotations

import json

from repro.obs import export, metrics, trace


def _record_sample_tree():
    trace.enable()
    with trace.span("driver.compile", file="x.c"):
        with trace.span("frontend.parse"):
            pass
        with trace.span("backend.schedule", mode="combined"):
            pass


class TestChromeTrace:
    def test_complete_events_with_relative_microsecond_times(self):
        _record_sample_tree()
        doc = export.chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == [
            "driver.compile",
            "frontend.parse",
            "backend.schedule",
        ]
        for e in events:
            assert e["ph"] == "X"
            assert e["pid"] == 1 and e["tid"] == 1
            assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        assert events[0]["cat"] == "driver"
        assert events[0]["args"] == {"file": "x.c"}

    def test_document_is_json_serialisable(self):
        _record_sample_tree()
        parsed = json.loads(json.dumps(export.chrome_trace()))
        assert len(parsed["traceEvents"]) == 3

    def test_non_primitive_attrs_are_stringified(self):
        trace.enable()
        with trace.span("s", mode=object()):
            pass
        (event,) = export.chrome_trace()["traceEvents"]
        assert isinstance(event["args"]["mode"], str)

    def test_open_span_exported_with_elapsed_duration(self):
        trace.enable()
        s = trace.span("open")
        s.__enter__()
        (event,) = export.chrome_trace()["traceEvents"]
        assert event["dur"] >= 0.0
        s.__exit__(None, None, None)


class TestAggregatesAndStats:
    def test_span_aggregates_count_and_totals(self):
        trace.enable()
        for _ in range(3):
            with trace.span("parse"):
                pass
        agg = export.span_aggregates()
        assert agg["parse"]["count"] == 3
        assert agg["parse"]["total_s"] >= 0.0
        assert agg["parse"]["mean_s"] >= 0.0

    def test_stats_snapshot_merges_metrics_and_spans(self):
        _record_sample_tree()
        metrics.enable()
        metrics.inc("hli.query.get_alias", "none")
        doc = export.stats_snapshot()
        assert set(doc) == {"counters", "gauges", "histograms", "spans"}
        assert doc["counters"] == {"hli.query.get_alias.none": 1}
        assert "driver.compile" in doc["spans"]


class TestTextTree:
    def test_indentation_follows_nesting(self):
        _record_sample_tree()
        lines = export.text_tree().splitlines()
        assert lines[0].startswith("driver.compile")
        assert lines[1].startswith("  frontend.parse")
        assert lines[2].startswith("  backend.schedule")
        assert "[file=x.c]" in lines[0]
        assert "[mode=combined]" in lines[2]

    def test_empty_when_nothing_recorded(self):
        assert export.text_tree() == ""
