"""Counter / gauge / histogram registry behaviour."""

from __future__ import annotations

from repro.obs import metrics


class TestDisabled:
    def test_all_mutators_are_noops(self):
        metrics.inc("a")
        metrics.add("b", 5)
        metrics.gauge("c", 1.5)
        metrics.observe("d", 2.0)
        assert metrics.counters() == {}
        assert metrics.gauges() == {}
        assert metrics.histograms() == {}
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_mutation_count_stays_flat(self):
        before = metrics.mutations()
        for _ in range(100):
            metrics.inc("x", "y")
            metrics.observe("h", 1.0)
        assert metrics.mutations() == before


class TestCounters:
    def test_inc_with_label_suffix(self):
        metrics.enable()
        metrics.inc("hli.query.get_equiv_acc", "none")
        metrics.inc("hli.query.get_equiv_acc", "none")
        metrics.inc("hli.query.get_equiv_acc", "maybe")
        assert metrics.counters() == {
            "hli.query.get_equiv_acc.none": 2,
            "hli.query.get_equiv_acc.maybe": 1,
        }

    def test_add_skips_zero(self):
        metrics.enable()
        metrics.add("edges", 0)
        assert metrics.counters() == {}
        metrics.add("edges", 7)
        metrics.add("edges", 3)
        assert metrics.counters() == {"edges": 10}

    def test_gauge_keeps_last_value(self):
        metrics.enable()
        metrics.gauge("g", 1.0)
        metrics.gauge("g", 9.0)
        assert metrics.gauges() == {"g": 9.0}


class TestHistograms:
    def test_summary_statistics(self):
        metrics.enable()
        for v in (1.0, 2.0, 3.0, 4.0):
            metrics.observe("h", v)
        h = metrics.histograms()["h"]
        assert h.count == 4
        assert h.total == 10.0
        assert h.min == 1.0 and h.max == 4.0
        assert h.mean == 2.5

    def test_percentiles(self):
        metrics.enable()
        for v in range(1, 101):
            metrics.observe("h", float(v))
        h = metrics.histograms()["h"]
        assert abs(h.percentile(50) - 50) <= 2
        assert abs(h.percentile(95) - 95) <= 2

    def test_reservoir_stays_bounded_but_stats_exact(self):
        metrics.enable()
        n = metrics.RESERVOIR * 3
        for v in range(n):
            metrics.observe("h", float(v))
        h = metrics.histograms()["h"]
        assert h.count == n
        assert h.min == 0.0 and h.max == float(n - 1)
        assert len(h.samples) <= metrics.RESERVOIR

    def test_to_dict_is_json_shaped(self):
        metrics.enable()
        metrics.observe("h", 2.0)
        d = metrics.histograms()["h"].to_dict()
        assert set(d) == {"count", "sum", "min", "max", "mean", "p50", "p95"}


class TestLifecycle:
    def test_reset_clears_everything(self):
        metrics.enable()
        metrics.inc("a")
        metrics.gauge("g", 1.0)
        metrics.observe("h", 1.0)
        metrics.reset()
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert metrics.is_enabled()

    def test_snapshot_keys_sorted(self):
        metrics.enable()
        metrics.inc("zzz")
        metrics.inc("aaa")
        assert list(metrics.snapshot()["counters"]) == ["aaa", "zzz"]
