"""End-to-end: compiling with ``trace=True`` records the full span tree
and the counter catalogue documented in docs/OBSERVABILITY.md."""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source, obs
from repro.backend.ddg import DDGMode
from repro.obs import metrics, trace
from tests.conftest import FIG2_SOURCE, SIMPLE_MAIN


def _compile_traced(source: str, name: str, **opt_kwargs):
    opts = CompileOptions(trace=True, **opt_kwargs)
    result = compile_source(source, name, opts)
    return result


class TestSpanTree:
    def test_compile_records_pipeline_span_tree(self):
        _compile_traced(FIG2_SOURCE, "fig2.c", mode=DDGMode.COMBINED)
        names = {s.name for s in trace.iter_spans()}
        assert {
            "driver.compile",
            "frontend.parse_and_check",
            "frontend.parse",
            "frontend.semantic",
            "analysis.build_hli",
            "analysis.points_to",
            "analysis.refmod",
            "analysis.unit",
            "analysis.itemgen",
            "analysis.tblconst",
            "backend.lowering",
            "backend.mapping",
            "backend.schedule",
        } <= names
        (root,) = trace.roots()
        assert root.name == "driver.compile"
        assert root.attrs["file"] == "fig2.c"
        assert root.attrs["mode"] == "combined"
        assert root.dur is not None and root.dur > 0

    def test_optimization_spans_when_passes_enabled(self):
        _compile_traced(
            SIMPLE_MAIN,
            "simple.c",
            mode=DDGMode.COMBINED,
            cse=True,
            licm=True,
        )
        names = {s.name for s in trace.iter_spans()}
        assert {"pm.pass", "backend.cse", "backend.licm"} <= names
        # every pipeline stage runs under a pass-manager span
        ran = {
            s.attrs["pass"] for s in trace.iter_spans() if s.name == "pm.pass"
        }
        assert {"parse", "hli-build", "lower", "map", "cse", "licm", "schedule"} <= ran

    def test_trace_left_disabled_afterwards(self):
        _compile_traced(SIMPLE_MAIN, "simple.c")
        assert not obs.is_enabled()


class TestCounters:
    def test_frontend_and_lowering_counters(self):
        _compile_traced(FIG2_SOURCE, "fig2.c")
        c = metrics.counters()
        assert c["frontend.functions"] == 1
        assert c["frontend.source_lines"] > 0
        assert c["lowering.functions"] == 1
        assert c["lowering.insns"] > 0
        assert c["analysis.items"] > 0
        assert c["analysis.regions"] > 0
        assert c["map.mapped"] > 0

    def test_hli_query_verdict_counters(self):
        _compile_traced(FIG2_SOURCE, "fig2.c", mode=DDGMode.COMBINED)
        c = metrics.counters()
        equiv = {k: v for k, v in c.items() if k.startswith("hli.query.get_equiv_acc.")}
        assert equiv, "HLI-mode scheduling must issue get_equiv_acc queries"
        assert set(equiv) <= {
            "hli.query.get_equiv_acc.definite",
            "hli.query.get_equiv_acc.maybe",
            "hli.query.get_equiv_acc.none",
        }

    def test_ddg_edge_counters_per_mode(self):
        for mode in (DDGMode.GCC, DDGMode.HLI, DDGMode.COMBINED):
            obs.reset()
            _compile_traced(FIG2_SOURCE, "fig2.c", mode=mode)
            c = metrics.counters()
            assert c["ddg.tests"] > 0
            kept = c.get(f"ddg.edges.kept.{mode.value}", 0)
            deleted = c.get(f"ddg.edges.deleted.{mode.value}", 0)
            assert kept > 0
            # HLI/COMBINED prune edges GCC keeps; GCC itself deletes none.
            if mode is DDGMode.GCC:
                assert deleted == 0
            assert c["sched.blocks"] > 0

    def test_combined_deletes_edges_fig2(self):
        _compile_traced(FIG2_SOURCE, "fig2.c", mode=DDGMode.COMBINED)
        assert metrics.counters().get("ddg.edges.deleted.combined", 0) > 0

    def test_ready_list_histogram_recorded(self):
        _compile_traced(FIG2_SOURCE, "fig2.c", mode=DDGMode.COMBINED)
        h = metrics.histograms()["sched.ready_list_len"]
        assert h.count > 0
        assert h.max >= 1


class TestMaintenanceCounters:
    def test_unroll_emits_maintenance_mutations(self):
        _compile_traced(
            SIMPLE_MAIN,
            "simple.c",
            mode=DDGMode.COMBINED,
            unroll=2,
        )
        c = metrics.counters()
        assert c.get("unroll.loops_unrolled", 0) > 0
        maint = {k: v for k, v in c.items() if k.startswith("hli.maintenance.")}
        assert maint, "unrolling must route through HLI maintenance ops"


class TestMachineCounters:
    def test_execute_and_time_record_machine_metrics(self):
        from repro.driver.timing import time_benchmark
        from repro.workloads.suite import BenchmarkSpec

        spec = BenchmarkSpec(
            name="simple", suite="unit", source=SIMPLE_MAIN, is_float=False
        )
        with obs.enabled_scope():
            time_benchmark(spec)
        names = {s.name for s in trace.iter_spans()}
        assert {"driver.timing", "driver.timing.run", "machine.execute", "machine.time"} <= names
        c = metrics.counters()
        assert c["machine.dynamic_insns"] > 0
        assert c["machine.cycles.r4600"] > 0
        assert c["machine.cycles.r10000"] > 0


class TestLintCounters:
    def test_checker_lint_span_and_counters(self):
        from repro.checker.lint import lint_compilation

        comp = compile_source(
            FIG2_SOURCE, "fig2.c", CompileOptions(mode=DDGMode.COMBINED)
        )
        with obs.enabled_scope():
            lint_compilation(comp)
        names = {s.name for s in trace.iter_spans()}
        assert "checker.lint" in names
        assert "lint.claims_checked" in metrics.counters()


@pytest.mark.parametrize("env,expected", [("1", True), ("0", False), ("", False)])
def test_env_var_gate(env, expected):
    """REPRO_TRACE flips the switch at import time (fresh interpreter)."""
    import os
    import subprocess
    import sys

    env_vars = dict(os.environ, REPRO_TRACE=env)
    out = subprocess.run(
        [sys.executable, "-c", "from repro import obs; print(obs.is_enabled())"],
        capture_output=True,
        text=True,
        env=env_vars,
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == str(expected)
