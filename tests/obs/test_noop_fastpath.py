"""Satellite: the disabled subsystem must be near-free.

Two complementary checks, both deterministic (no wall-clock comparison
of two full compiles, which flakes on loaded CI machines):

1. **Zero allocation / zero mutation** — compiling the entire benchmark
   suite with obs disabled allocates no ``Span`` objects and applies no
   registry mutations.  This proves every instrumentation point hits the
   boolean fast path before doing any work.

2. **<5% overhead bound** — measure the disabled per-call cost of
   ``trace.span()`` / ``metrics.inc()`` directly (hundreds of ns each),
   count how many instrumentation calls a traced suite compile actually
   makes (allocations + mutations), and assert

       calls x per_call_cost  <  5% of the disabled compile time.

   This bounds the worst-case overhead analytically instead of racing
   two timers against scheduler noise.
"""

from __future__ import annotations

from time import perf_counter

from repro import CompileOptions, compile_source, obs
from repro.backend.ddg import DDGMode
from repro.obs import metrics, trace
from repro.workloads.suite import BENCHMARKS


def _compile_suite() -> float:
    t0 = perf_counter()
    for spec in BENCHMARKS:
        compile_source(spec.source, spec.name, CompileOptions(mode=DDGMode.COMBINED))
    return perf_counter() - t0


class TestZeroWorkWhenDisabled:
    def test_suite_compile_allocates_no_spans_and_mutates_nothing(self):
        assert not obs.is_enabled()
        spans_before = trace.allocated_spans()
        muts_before = metrics.mutations()
        _compile_suite()
        assert trace.allocated_spans() == spans_before
        assert metrics.mutations() == muts_before
        assert trace.roots() == []
        assert metrics.counters() == {}
        assert metrics.gauges() == {}
        assert metrics.histograms() == {}

    def test_disabled_span_call_returns_singleton_not_fresh_object(self):
        before = trace.allocated_spans()
        spans = [trace.span("x", k=i) for i in range(1000)]
        assert trace.allocated_spans() == before
        assert all(s is spans[0] for s in spans)


class TestOverheadBound:
    N = 200_000

    def _per_call_cost(self, fn) -> float:
        t0 = perf_counter()
        for _ in range(self.N):
            fn()
        return (perf_counter() - t0) / self.N

    def test_instrumentation_calls_cost_under_five_percent(self):
        # 1. per-call disabled cost of the two hot entry points
        span_cost = self._per_call_cost(lambda: trace.span("backend.schedule"))
        inc_cost = self._per_call_cost(lambda: metrics.inc("ddg.tests"))
        per_call = max(span_cost, inc_cost)

        # 2. how many instrumentation events does a traced suite make?
        spans0, muts0 = trace.allocated_spans(), metrics.mutations()
        with obs.enabled_scope():
            for spec in BENCHMARKS:
                compile_source(
                    spec.source, spec.name, CompileOptions(mode=DDGMode.COMBINED)
                )
        calls = (trace.allocated_spans() - spans0) + (metrics.mutations() - muts0)
        obs.disable()
        obs.reset()

        # 3. baseline: the same suite compiled with obs off
        baseline = _compile_suite()

        worst_case_overhead = calls * per_call
        assert calls > 0
        assert worst_case_overhead < 0.05 * baseline, (
            f"{calls} instrumentation calls x {per_call * 1e9:.0f}ns "
            f"= {worst_case_overhead * 1e3:.2f}ms, which exceeds 5% of the "
            f"{baseline * 1e3:.0f}ms disabled compile"
        )
