"""Shared obs-test hygiene: the subsystem is process-global state."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Every obs test starts disabled+empty and leaves no residue behind."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
