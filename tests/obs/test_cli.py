"""The ``repro-stats`` CLI (module form: ``python -m repro.obs.cli``)."""

from __future__ import annotations

import json

import pytest

from repro.obs import cli
from tests.conftest import SIMPLE_MAIN


@pytest.fixture()
def source_file(tmp_path):
    p = tmp_path / "prog.c"
    p.write_text(SIMPLE_MAIN)
    return str(p)


class TestFormats:
    def test_chrome_output_is_valid_trace_event_json(self, source_file, capsys):
        assert cli.main([source_file, "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        events = doc["traceEvents"]
        assert len(events) > 0
        names = {e["name"] for e in events}
        assert "driver.compile" in names
        assert all(e["ph"] == "X" for e in events)

    def test_stats_output_has_counters_and_span_aggregates(self, source_file, capsys):
        assert cli.main([source_file, "--format", "stats"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["frontend.functions"] == 1
        assert "driver.compile" in doc["spans"]

    def test_text_output_is_an_indented_tree(self, source_file, capsys):
        assert cli.main([source_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("driver.compile")
        assert "\n  pm.pass" in out
        assert "\n    frontend.parse_and_check" in out

    def test_out_writes_file(self, source_file, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert cli.main([source_file, "--format", "chrome", "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]
        assert "wrote chrome output" in capsys.readouterr().err


class TestWorkloadSelection:
    def test_benchmark_by_name(self, capsys):
        assert cli.main(["--benchmark", "wc", "--format", "stats"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spans"]["driver.compile"]["count"] == 1

    def test_suite_compiles_every_benchmark(self, capsys):
        from repro.workloads.suite import BENCHMARKS

        assert cli.main(["--suite", "--format", "stats"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spans"]["driver.compile"]["count"] == len(BENCHMARKS)

    def test_execute_records_machine_spans(self, source_file, capsys):
        assert cli.main([source_file, "--execute", "--format", "stats"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "machine.run" in doc["spans"]
        assert doc["counters"]["machine.cycles.r4600"] > 0


class TestErrors:
    def test_no_workloads_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            cli.main([])
        assert exc.value.code == 2

    def test_unknown_benchmark_is_error(self, capsys):
        assert cli.main(["--benchmark", "no-such-benchmark"]) == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_is_error(self, capsys):
        assert cli.main(["/nonexistent/path.c"]) == 2
        assert "error" in capsys.readouterr().err

    def test_compile_error_is_reported_not_raised(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("int main( {")
        assert cli.main([str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_unroll_is_usage_error(self, source_file):
        with pytest.raises(SystemExit):
            cli.main([source_file, "--unroll", "0"])
