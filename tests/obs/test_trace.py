"""Span recording: nesting, attributes, switches, scoping."""

from __future__ import annotations

from repro import obs
from repro.obs import trace
from repro.obs.trace import _NOOP


class TestDisabled:
    def test_span_returns_shared_noop_singleton(self):
        s1 = trace.span("a")
        s2 = trace.span("b", k=1)
        assert s1 is _NOOP and s2 is _NOOP

    def test_noop_span_supports_full_protocol(self):
        with trace.span("a", k=1) as s:
            assert s.set(x=2) is s
        assert trace.roots() == []

    def test_nothing_recorded(self):
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        assert trace.roots() == []
        assert list(trace.iter_spans()) == []


class TestEnabled:
    def test_nesting_builds_a_tree(self):
        trace.enable()
        with trace.span("compile", file="x.c"):
            with trace.span("parse"):
                pass
            with trace.span("schedule"):
                with trace.span("ddg"):
                    pass
        roots = trace.roots()
        assert [r.name for r in roots] == ["compile"]
        assert [c.name for c in roots[0].children] == ["parse", "schedule"]
        assert [c.name for c in roots[0].children[1].children] == ["ddg"]

    def test_durations_are_positive_and_nested_within_parent(self):
        trace.enable()
        with trace.span("outer"):
            with trace.span("inner"):
                sum(range(1000))
        outer, = trace.roots()
        inner, = outer.children
        assert outer.dur is not None and inner.dur is not None
        assert 0 < inner.dur <= outer.dur

    def test_attributes_at_open_and_via_set(self):
        trace.enable()
        with trace.span("s", mode="combined") as s:
            s.set(insns=42)
        rec, = trace.roots()
        assert rec.attrs == {"mode": "combined", "insns": 42}

    def test_sequential_roots(self):
        trace.enable()
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        assert [r.name for r in trace.roots()] == ["a", "b"]

    def test_iter_spans_depth_first(self):
        trace.enable()
        with trace.span("a"):
            with trace.span("b"):
                pass
            with trace.span("c"):
                pass
        assert [s.name for s in trace.iter_spans()] == ["a", "b", "c"]

    def test_reset_drops_spans_but_keeps_switch(self):
        trace.enable()
        with trace.span("a"):
            pass
        trace.reset()
        assert trace.roots() == []
        assert trace.is_enabled()


class TestScoping:
    def test_enabled_scope_enables_then_restores(self):
        assert not trace.is_enabled()
        with obs.enabled_scope():
            assert trace.is_enabled()
            with trace.span("x"):
                pass
        assert not trace.is_enabled()
        assert [r.name for r in trace.roots()] == ["x"]

    def test_enabled_scope_false_is_passthrough(self):
        with obs.enabled_scope(False):
            assert not trace.is_enabled()

    def test_nested_scope_does_not_disable_outer(self):
        with obs.enabled_scope():
            with obs.enabled_scope():
                pass
            assert trace.is_enabled()

    def test_disable_mid_span_still_closes_cleanly(self):
        trace.enable()
        with trace.span("outer"):
            trace.disable()
            # span() after disable returns the noop; closing the open
            # Span must still unwind the stack without error
            with trace.span("ignored"):
                pass
        assert trace.roots()[0].dur is not None
