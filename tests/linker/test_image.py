"""Merging per-unit RTL into one linked image."""

from repro.backend.lowering import ProgramLowering
from repro.backend.rtl import RTLProgram
from repro.linker import link_image

BASE = ProgramLowering.BASE_ADDRESS


def _unit(globals_layout, functions=(), init_data=()):
    rtl = RTLProgram()
    rtl.globals_layout = dict(globals_layout)
    for name in functions:
        rtl.functions[name] = object()  # executor only needs the mapping here
    rtl.init_data = dict(init_data)
    return rtl


class TestLayout:
    def test_union_relayout_is_deterministic_and_aligned(self):
        a = _unit({"g": (BASE, 4), "shared": (BASE + 8, 4)})
        b = _unit({"shared": (BASE, 4), "h": (BASE + 8, 12)})
        image, diags = link_image([("a.c", a), ("b.c", b)])
        assert diags == []
        # first-seen order, 8-byte aligned slots from the base address
        assert image.globals_layout["g"] == (BASE, 8)
        assert image.globals_layout["shared"] == (BASE + 8, 8)
        assert image.globals_layout["h"] == (BASE + 16, 16)

    def test_functions_merged_by_name(self):
        a = _unit({}, functions=["main"])
        b = _unit({}, functions=["f", "g"])
        image, diags = link_image([("a.c", a), ("b.c", b)])
        assert diags == []
        assert set(image.functions) == {"main", "f", "g"}

    def test_init_data_remapped_through_owner(self):
        # unit b laid 'tab' at its own BASE; the linked image moves it
        # behind a's 'g', and the initialiser must follow.
        a = _unit({"g": (BASE, 4)})
        b = _unit({"tab": (BASE, 16)}, init_data={BASE + 4: 77})
        image, diags = link_image([("a.c", a), ("b.c", b)])
        assert diags == []
        new_base, _size = image.globals_layout["tab"]
        assert new_base != BASE
        assert image.init_data == {new_base + 4: 77}


class TestDiagnostics:
    def test_size_mismatch_takes_max(self):
        a = _unit({"v": (BASE, 4)})
        b = _unit({"v": (BASE, 16)})
        image, diags = link_image([("a.c", a), ("b.c", b)])
        assert [d.code for d in diags] == ["size-mismatch"]
        assert diags[0].name == "v"
        assert diags[0].units == ("a.c", "b.c")
        assert image.globals_layout["v"][1] == 16

    def test_argslot_size_difference_is_benign(self):
        a = _unit({"__argslot0": (BASE, 4)})
        b = _unit({"__argslot0": (BASE, 8)})
        _image, diags = link_image([("a.c", a), ("b.c", b)])
        assert diags == []

    def test_duplicate_function_keeps_first(self):
        a = _unit({}, functions=["f"])
        b = _unit({}, functions=["f"])
        first = a.functions["f"]
        image, diags = link_image([("a.c", a), ("b.c", b)])
        assert [d.code for d in diags] == ["duplicate-definition"]
        assert diags[0].units == ("a.c", "b.c")
        assert image.functions["f"] is first

    def test_orphan_init_reported(self):
        a = _unit({"g": (BASE, 4)}, init_data={BASE + 4096: 9})
        image, diags = link_image([("a.c", a)])
        assert [d.code for d in diags] == ["orphan-init"]
        assert image.init_data == {}
