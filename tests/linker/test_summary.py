"""Whole-program call graph, SCC decomposition, and the summary fixpoint."""

from repro.linker import (
    build_call_graph,
    compute_summaries,
    tarjan_sccs,
)


class TestCallGraph:
    def test_cross_unit_edges(self, make_units):
        units = make_units(
            (
                "a.c",
                "extern int f(int k);\n"
                "int main() { return f(1); }\n",
            ),
            (
                "b.c",
                "extern int g(int k);\n"
                "int f(int k) { return g(k + 1); }\n",
            ),
            ("c.c", "int g(int k) { return k * 2; }\n"),
        )
        graph = build_call_graph(units)
        assert graph["main"] == {"f"}
        assert graph["f"] == {"g"}
        assert graph["g"] == set()

    def test_undefined_callee_not_an_edge(self, make_units):
        units = make_units(
            ("a.c", "extern int mystery(int k);\nint main() { return mystery(1); }\n")
        )
        assert build_call_graph(units)["main"] == set()


class TestTarjan:
    def test_bottom_up_order(self):
        graph = {"main": {"f"}, "f": {"g"}, "g": set()}
        sccs = tarjan_sccs(graph)
        assert sccs.index(["g"]) < sccs.index(["f"]) < sccs.index(["main"])

    def test_mutual_recursion_is_one_scc(self):
        graph = {"even": {"odd"}, "odd": {"even"}, "main": {"even"}}
        sccs = tarjan_sccs(graph)
        assert ["even", "odd"] in sccs
        assert sccs.index(["even", "odd"]) < sccs.index(["main"])

    def test_self_loop_is_singleton_scc(self):
        sccs = tarjan_sccs({"r": {"r"}})
        assert sccs == [["r"]]

    def test_deep_chain_does_not_overflow(self):
        n = 5000
        graph = {f"f{i}": {f"f{i + 1}"} for i in range(n)}
        graph[f"f{n}"] = set()
        sccs = tarjan_sccs(graph)
        assert len(sccs) == n + 1


class TestFixpoint:
    def test_effects_propagate_up_call_chain(self, make_units):
        units = make_units(
            (
                "a.c",
                "extern int f(int k);\n"
                "int main() { return f(1); }\n",
            ),
            (
                "b.c",
                "int counter;\n"
                "int f(int k) { counter = counter + k; return counter; }\n",
            ),
        )
        result = compute_summaries(units)
        assert "counter" in result.summaries["f"].mod_names
        # main inherits the callee's effects transitively
        assert "counter" in result.summaries["main"].mod_names
        assert not result.summaries["main"].mod_any

    def test_param_effect_instantiated_at_call_site(self, make_units):
        units = make_units(
            (
                "a.c",
                "int buf[8];\n"
                "extern int fill(int *p, int n);\n"
                "int main() { return fill(buf, 8); }\n",
            ),
            (
                "b.c",
                "int fill(int *p, int n) {\n"
                "    int i;\n"
                "    for (i = 0; i < n; i++) { p[i] = i; }\n"
                "    return n;\n"
                "}\n",
            ),
        )
        result = compute_summaries(units)
        assert result.summaries["fill"].param_mod == {0}
        # instantiating p := buf at main's call site names the array
        assert "buf" in result.summaries["main"].mod_names

    def test_unknown_external_degrades_to_any(self, make_units):
        units = make_units(
            ("a.c", "extern int mystery(int k);\nint main() { return mystery(1); }\n")
        )
        result = compute_summaries(units)
        assert result.summaries["main"].ref_any
        assert result.summaries["main"].mod_any

    def test_pure_builtin_stays_narrow(self, make_units):
        units = make_units(
            ("a.c", "int g;\nint main() { g = abs(0 - 3); return g; }\n")
        )
        result = compute_summaries(units)
        assert not result.summaries["main"].mod_any
        assert not result.summaries["main"].ref_any

    def test_recursive_scc_iterates_to_fixpoint(self, make_units):
        units = make_units(
            (
                "a.c",
                "int depth;\n"
                "extern int odd(int n);\n"
                "int even(int n) {\n"
                "    if (n == 0) { return 1; }\n"
                "    depth = depth + 1;\n"
                "    return odd(n - 1);\n"
                "}\n"
                "int main() { return even(6); }\n",
            ),
            (
                "b.c",
                "int seen;\n"
                "extern int even(int n);\n"
                "int odd(int n) {\n"
                "    if (n == 0) { return 0; }\n"
                "    seen = seen + 1;\n"
                "    return even(n - 1);\n"
                "}\n",
            ),
        )
        result = compute_summaries(units)
        scc = next(c for c in result.sccs if len(c) == 2)
        assert sorted(scc) == ["even", "odd"]
        # both counters visible in both summaries after the fixpoint
        for fn in ("even", "odd"):
            assert {"depth", "seen"} <= result.summaries[fn].mod_names
        scc_id = result.summaries["even"].scc_id
        assert result.iterations[scc_id] >= 2  # at least one re-iteration

    def test_summary_covers_and_fingerprint(self, make_units):
        units = make_units(
            (
                "a.c",
                "int g;\nint f(int k) { g = k; return g; }\n"
                "int main() { return f(2); }\n",
            )
        )
        result = compute_summaries(units)
        s = result.summaries["f"]
        assert s.covers(s.copy())
        narrowed = s.copy()
        narrowed.mod_names.clear()
        assert s.covers(narrowed)
        assert not narrowed.covers(s)
        assert s.fingerprint() == result.summaries["f"].fingerprint()
