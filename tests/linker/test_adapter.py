"""Summary → EffectSet conversion: deferred name binding across parses."""

from repro.analysis.alias import TOP
from repro.analysis.refmod import ForeignObject
from repro.linker import (
    compute_summaries,
    effects_fingerprint,
    effects_for_unit,
)

CALLER = """\
int knob;
extern int twist(int k);
int main() {
    knob = twist(5);
    return knob;
}
"""

CALLEE = """\
int gauge;
int twist(int k) {
    gauge = gauge + k;
    return gauge;
}
"""


def _analyze(make_units):
    units = make_units(("caller.c", CALLER), ("callee.c", CALLEE))
    return units, compute_summaries(units).summaries


class TestEffectsForUnit:
    def test_only_foreign_definitions_covered(self, make_units):
        units, summaries = _analyze(make_units)
        caller, callee = units
        eff = effects_for_unit(caller, summaries)
        assert set(eff) == {"twist"}
        # the defining unit needs no external effects for its own fn
        assert effects_for_unit(callee, summaries) == {}

    def test_names_cross_as_unbound_markers(self, make_units):
        units, summaries = _analyze(make_units)
        eff = effects_for_unit(units[0], summaries)["twist"]
        # Deferred binding: the adapter must never emit Symbol objects —
        # symbol identity dies at the parse boundary.  Names travel as
        # ForeignObject and get rebound by the consuming RefModAnalysis.
        assert all(isinstance(o, ForeignObject) for o in eff.ref)
        assert all(isinstance(o, ForeignObject) for o in eff.mod)
        assert {o.name for o in eff.mod} == {"gauge"}

    def test_any_flags_fold_to_top(self, make_units):
        units = make_units(
            (
                "a.c",
                "extern int wild(int k);\n"
                "extern int opaque(int k);\n"
                "int main() { return opaque(wild(1)); }\n",
            ),
            (
                "b.c",
                "extern int mystery(int k);\n"
                "int opaque(int k) { return mystery(k); }\n",
            ),
        )
        summaries = compute_summaries(units).summaries
        eff = effects_for_unit(units[0], summaries)["opaque"]
        assert eff.ref == {TOP}
        assert eff.mod == {TOP}

    def test_param_effects_bind_at_call_sites(self, make_units):
        units = make_units(
            (
                "a.c",
                "int buf[4];\n"
                "extern int fill(int *p);\n"
                "int main() { return fill(buf); }\n",
            ),
            ("b.c", "int fill(int *p) { p[0] = 1; return 0; }\n"),
        )
        summaries = compute_summaries(units).summaries
        assert summaries["fill"].param_mod == {0}
        eff = effects_for_unit(units[0], summaries)["fill"]
        # argument-position binding: the through-parameter write lands
        # exactly in what main's call site passes — buf, not TOP
        assert TOP not in eff.mod
        assert {o.name for o in eff.mod} == {"buf"}

    def test_param_effects_fold_to_top_without_call_sites(self, make_units):
        units = make_units(
            (
                "a.c",
                "extern int fill(int *p);\n"
                "int main() { return 0; }\n",
            ),
            ("b.c", "int fill(int *p) { p[0] = 1; return 0; }\n"),
        )
        summaries = compute_summaries(units).summaries
        eff = effects_for_unit(units[0], summaries)["fill"]
        # no call site to bind against: stay conservative
        assert TOP in eff.mod

    def test_param_indirection_folds_to_top(self, make_units):
        units = make_units(
            (
                "a.c",
                "extern int fill(int *p);\n"
                "int relay(int *q) { return fill(q); }\n"
                "int main() { return 0; }\n",
            ),
            ("b.c", "int fill(int *p) { p[0] = 1; return 0; }\n"),
        )
        summaries = compute_summaries(units).summaries
        eff = effects_for_unit(units[0], summaries)["fill"]
        # the argument is relay's own parameter — "whatever my caller
        # passed" has no unit-local object, so the side degrades to TOP
        assert TOP in eff.mod


class TestFingerprint:
    def test_stable_and_order_independent(self, make_units):
        units, summaries = _analyze(make_units)
        fp1 = effects_fingerprint(effects_for_unit(units[0], summaries))
        units2, summaries2 = _analyze(make_units)
        fp2 = effects_fingerprint(effects_for_unit(units2[0], summaries2))
        assert fp1 == fp2
        assert "twist" in fp1 and "gauge" in fp1

    def test_distinguishes_effect_changes(self, make_units):
        units, summaries = _analyze(make_units)
        eff = effects_for_unit(units[0], summaries)
        fp_before = effects_fingerprint(eff)
        eff["twist"].mod.add(TOP)
        assert effects_fingerprint(eff) != fp_before
        assert "<top>" in effects_fingerprint(eff)
