"""Deterministic link-time corruptions used by the lint property tests."""

from repro.hli import faults
from repro.linker import link_units

SRC_A = """\
int knob;
extern int twist(int k);
int main() {
    knob = twist(5);
    return knob;
}
"""

SRC_B = """\
int gauge;
int twist(int k) {
    gauge = gauge + k;
    return gauge;
}
"""


def _link(make_units):
    return link_units(make_units(("a.c", SRC_A), ("b.c", SRC_B)))


class TestDropSummary:
    def test_blanks_one_non_main_summary(self, make_units):
        clean = _link(make_units)
        assert clean.summaries["twist"].mod_names == {"gauge"}
        with faults.inject(faults.DROP_SUMMARY):
            broken = _link(make_units)
        s = broken.summaries["twist"]
        assert not (s.ref_names or s.mod_names or s.ref_any or s.mod_any)

    def test_main_is_never_the_victim(self, make_units):
        with faults.inject(faults.DROP_SUMMARY):
            broken = _link(make_units)
        m = broken.summaries["main"]
        assert m.ref_names or m.mod_names or m.ref_any or m.mod_any


class TestSwapLinkEntries:
    def test_two_defined_symbols_swap_homes(self, make_units):
        clean = _link(make_units)
        with faults.inject(faults.SWAP_LINK_ENTRIES):
            broken = _link(make_units)
        swapped = [
            n
            for n in clean.table.symbols
            if clean.table.symbols[n].defined_in != broken.table.symbols[n].defined_in
        ]
        assert len(swapped) == 2
        a, b = sorted(swapped)
        assert broken.table.symbols[a].defined_in == clean.table.symbols[b].defined_in
        assert broken.table.symbols[b].defined_in == clean.table.symbols[a].defined_in
        # everything but the home field is preserved
        for n in swapped:
            assert broken.table.symbols[n].type_repr == clean.table.symbols[n].type_repr
            assert (
                broken.table.symbols[n].declared_in == clean.table.symbols[n].declared_in
            )

    def test_fingerprint_changes(self, make_units):
        clean = _link(make_units)
        with faults.inject(faults.SWAP_LINK_ENTRIES):
            broken = _link(make_units)
        assert clean.fingerprint() != broken.fingerprint()


class TestInactiveByDefault:
    def test_no_fault_no_change(self, make_units):
        assert _link(make_units).fingerprint() == _link(make_units).fingerprint()
