"""Shared helpers: parse + analyze a set of MiniC translation units."""

import pytest

from repro.frontend import parse_and_check
from repro.linker import analyze_unit


@pytest.fixture
def make_units():
    def build(*pairs):
        units = []
        for filename, source in pairs:
            program, table = parse_and_check(source, filename)
            units.append(analyze_unit(program, table, filename))
        return units

    return build
