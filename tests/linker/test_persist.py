"""Persisted summary tables: round-trip, keying, and corruption recovery."""

from __future__ import annotations

from repro.difftest.gen import generate_units
from repro.driver.wpa import compile_whole_program
from repro.frontend import parse_and_check
from repro.linker import analyze_unit, compute_summaries, link_units
from repro.linker.persist import (
    load_summaries,
    local_fingerprint,
    save_summaries,
)
from repro import obs
from repro.obs import metrics as _metrics

MATH_C = """\
int gcount;
int bump(int x) { gcount = gcount + x; return gcount; }
"""

MAIN_C = """\
extern int bump(int x);
int main() { return bump(3) + bump(4); }
"""


def _units(*pairs):
    out = []
    for filename, source in pairs:
        program, table = parse_and_check(source, filename)
        out.append(analyze_unit(program, table, filename=filename))
    return out


class TestFileRoundTrip:
    def test_save_then_load(self, tmp_path):
        units = _units(("math.c", MATH_C), ("main.c", MAIN_C))
        result = compute_summaries(units)
        key = local_fingerprint(units)
        path = tmp_path / "link.hlis"
        save_summaries(path, result, key)
        back = load_summaries(path, key)
        assert back is not None
        assert sorted(back.summaries) == sorted(result.summaries)
        assert back.sccs == result.sccs

    def test_missing_file_is_none(self, tmp_path):
        assert load_summaries(tmp_path / "absent.hlis", "k") is None

    def test_key_mismatch_evicts(self, tmp_path):
        units = _units(("math.c", MATH_C), ("main.c", MAIN_C))
        path = tmp_path / "link.hlis"
        save_summaries(path, compute_summaries(units), local_fingerprint(units))
        assert load_summaries(path, "some-other-link-state") is None
        assert not path.exists()  # stale table removed, recompute will overwrite

    def test_corruption_evicts(self, tmp_path):
        units = _units(("math.c", MATH_C), ("main.c", MAIN_C))
        key = local_fingerprint(units)
        path = tmp_path / "link.hlis"
        save_summaries(path, compute_summaries(units), key)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        assert load_summaries(path, key) is None
        assert not path.exists()


class TestLinkUnitsCache:
    def test_second_link_restores(self, tmp_path):
        path = tmp_path / "link.hlis"
        first = link_units(_units(("math.c", MATH_C), ("main.c", MAIN_C)), path)
        obs.reset()
        with obs.enabled_scope():
            second = link_units(
                _units(("math.c", MATH_C), ("main.c", MAIN_C)), path
            )
            snap = _metrics.counters()
        assert snap.get("linker.summaries_restored") == 1
        assert sorted(second.summaries) == sorted(first.summaries)
        for name, s in first.summaries.items():
            got = second.summaries[name]
            assert got.ref_names == s.ref_names
            assert got.mod_names == s.mod_names
            assert (got.ref_any, got.mod_any) == (s.ref_any, s.mod_any)

    def test_edit_recomputes_and_overwrites(self, tmp_path):
        path = tmp_path / "link.hlis"
        link_units(_units(("math.c", MATH_C), ("main.c", MAIN_C)), path)
        # the key is the local-summary fingerprint, so the edit must
        # change observable effects (a new modified global), not just
        # arithmetic
        edited = MATH_C.replace(
            "int gcount;", "int gcount;\nint gextra;"
        ).replace("return gcount;", "gextra = x; return gcount;")
        obs.reset()
        with obs.enabled_scope():
            link_units(_units(("math.c", edited), ("main.c", MAIN_C)), path)
            snap = _metrics.counters()
        assert "linker.summaries_restored" not in snap
        # the overwritten table serves the *edited* program next time
        obs.reset()
        with obs.enabled_scope():
            link_units(_units(("math.c", edited), ("main.c", MAIN_C)), path)
            snap = _metrics.counters()
        assert snap.get("linker.summaries_restored") == 1


class TestWholeProgramCache:
    def test_wpa_links_identically_from_cache(self, tmp_path):
        sources = generate_units(11, n_units=3)
        path = str(tmp_path / "link.hlis")
        cold = compile_whole_program(sources, summary_cache=path)
        warm = compile_whole_program(sources, summary_cache=path)
        assert sorted(warm.link.summaries) == sorted(cold.link.summaries)
        assert warm.link.fingerprint() == cold.link.fingerprint()
        for fname, comp in cold.units.items():
            wf = warm.units[fname]
            assert {n: [i.op for i in f.insns] for n, f in wf.rtl.functions.items()} == {
                n: [i.op for i in f.insns] for n, f in comp.rtl.functions.items()
            }
