"""Global symbol reconciliation: the link table and its diagnostics."""

from repro.linker import build_link_table


U_DEF = """\
int shared;
int arr[16];

extern int helper(int k);

int main() {
    shared = helper(3);
    return shared;
}
"""

U_USE = """\
extern int shared;
extern int arr[16];

int helper(int k) {
    arr[(k) & 15] = k;
    return shared + k;
}
"""


class TestCleanLink:
    def test_vars_and_functions_reconciled(self, make_units):
        table = build_link_table(make_units(("a.c", U_DEF), ("b.c", U_USE)))
        assert table.clean
        shared = table.symbols["shared"]
        assert shared.kind == "var"
        assert shared.defined_in == "a.c"
        assert shared.declared_in == ("a.c", "b.c")
        helper = table.symbols["helper"]
        assert helper.kind == "func"
        assert helper.defined_in == "b.c"
        assert table.symbols["main"].defined_in == "a.c"

    def test_array_size_recorded(self, make_units):
        table = build_link_table(make_units(("a.c", U_DEF), ("b.c", U_USE)))
        assert table.symbols["arr"].size == 64  # 16 x 4-byte ints

    def test_builtins_not_link_material(self, make_units):
        src = 'int main() { printf("x\\n"); return 0; }\n'
        table = build_link_table(make_units(("a.c", src)))
        assert "printf" not in table.symbols

    def test_fingerprint_is_stable(self, make_units):
        t1 = build_link_table(make_units(("a.c", U_DEF), ("b.c", U_USE)))
        t2 = build_link_table(make_units(("a.c", U_DEF), ("b.c", U_USE)))
        assert t1.fingerprint() == t2.fingerprint()
        assert "var shared def=a.c" in t1.fingerprint()


class TestDiagnostics:
    def test_duplicate_global_definition(self, make_units):
        units = make_units(
            ("a.c", "int g;\nint main() { g = 1; return g; }\n"),
            ("b.c", "int g;\nint f(int k) { g = k; return g; }\n"),
        )
        table = build_link_table(units)
        codes = [d.code for d in table.diagnostics]
        assert "duplicate-definition" in codes
        diag = next(d for d in table.diagnostics if d.code == "duplicate-definition")
        assert diag.name == "g"
        assert diag.units == ("a.c", "b.c")

    def test_duplicate_function_definition(self, make_units):
        units = make_units(
            ("a.c", "int f(int k) { return k; }\nint main() { return f(1); }\n"),
            ("b.c", "int f(int k) { return k + 1; }\n"),
        )
        table = build_link_table(units)
        assert any(
            d.code == "duplicate-definition" and d.name == "f"
            for d in table.diagnostics
        )

    def test_undefined_extern(self, make_units):
        units = make_units(
            ("a.c", "extern int ghost;\nint main() { return ghost; }\n")
        )
        table = build_link_table(units)
        assert any(
            d.code == "undefined-symbol" and d.name == "ghost"
            for d in table.diagnostics
        )
        assert table.symbols["ghost"].defined_in is None

    def test_conflicting_types(self, make_units):
        units = make_units(
            ("a.c", "int v;\nint main() { v = 2; return v; }\n"),
            ("b.c", "extern float v;\nint f(int k) { return k; }\n"),
        )
        table = build_link_table(units)
        assert any(
            d.code == "type-mismatch" and d.name == "v" for d in table.diagnostics
        )
