"""Unit partitioning for the parallel whole-program back end."""

import pytest

from repro.linker import PARTITION_MODES, partition_program, unit_weight

U0 = ("u0.c", "int helper0() { return 1; }")
U1 = ("u1.c", "int helper1() { int a; a = 2; a = a + 1; return a; }")
U2 = (
    "u2.c",
    "int helper2() { int i; int s; s = 0;"
    " for (i = 0; i < 4; i = i + 1) { s = s + i; } return s; }",
)
U3 = ("main.c", "int f(); int main() { return 7; }")


def test_modes_registered():
    assert set(PARTITION_MODES) == {"none", "1to1", "balanced"}


def test_none_mode_single_partition(make_units):
    units = make_units(U0, U1, U3)
    plan = partition_program(units, mode="none", jobs=4)
    assert plan.n_partitions == 1
    assert plan.partitions[0] == ["u0.c", "u1.c", "main.c"]
    assert plan.skew == 1.0


def test_1to1_mode_one_unit_per_partition(make_units):
    units = make_units(U0, U1, U2, U3)
    plan = partition_program(units, mode="1to1", jobs=2)
    assert plan.n_partitions == 4
    assert plan.partitions == [["u0.c"], ["u1.c"], ["u2.c"], ["main.c"]]


def test_balanced_covers_every_unit_exactly_once(make_units):
    units = make_units(U0, U1, U2, U3)
    plan = partition_program(units, mode="balanced", jobs=2)
    assert plan.n_partitions == 2
    seen = [f for part in plan.partitions for f in part]
    assert sorted(seen) == sorted(u.filename for u in units)


def test_balanced_respects_source_order_within_partitions(make_units):
    units = make_units(U0, U1, U2, U3)
    order = {u.filename: i for i, u in enumerate(units)}
    plan = partition_program(units, mode="balanced", jobs=2)
    for part in plan.partitions:
        indices = [order[f] for f in part]
        assert indices == sorted(indices)


def test_balanced_is_deterministic(make_units):
    units = make_units(U0, U1, U2, U3)
    a = partition_program(units, mode="balanced", jobs=3)
    b = partition_program(units, mode="balanced", jobs=3)
    assert a.partitions == b.partitions
    assert a.skew == b.skew


def test_balanced_caps_partitions_at_unit_count(make_units):
    units = make_units(U0, U1)
    plan = partition_program(units, mode="balanced", jobs=8)
    assert plan.n_partitions <= 2


def test_unknown_mode_rejected(make_units):
    units = make_units(U0, U1)
    with pytest.raises(ValueError, match="partition mode"):
        partition_program(units, mode="zigzag", jobs=2)


def test_unit_weight_grows_with_code_size(make_units):
    small, large = make_units(U0, U2)
    assert unit_weight(large) > unit_weight(small)


def test_skew_and_to_dict(make_units):
    units = make_units(U0, U1, U2, U3)
    plan = partition_program(units, mode="balanced", jobs=2)
    assert plan.skew >= 1.0
    d = plan.to_dict()
    assert d["mode"] == "balanced"
    assert d["partitions"] == plan.n_partitions
    assert d["units"] == 4
    assert d["skew"] == pytest.approx(plan.skew, abs=1e-4)
    assert d["cross_edges"] == plan.cross_edges
