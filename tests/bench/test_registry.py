"""Registry reproducibility: pinned seeds must regenerate identical bytes.

The committed manifest (``repro/bench/manifest_data.py``) is the
contract: every named set, rebuilt from its registered seeds, must hash
to exactly the digests recorded there.  An intentional workload change
therefore requires a version bump plus ``python -m repro.bench.registry
--write-manifests`` in the same commit — and an accidental generator
change fails here before it can silently invalidate TRAJECTORY history.
"""

from __future__ import annotations

import pytest

from repro.bench import registry
from repro.bench.manifest_data import MANIFESTS, SET_DIGESTS
from repro.workloads.suite import BENCHMARKS

ALL_SETS = registry.set_names()


def test_registry_is_nonempty_and_versioned():
    assert len(ALL_SETS) >= 4, "acceptance floor: at least 4 named sets"
    for name in ALL_SETS:
        s = registry.get_set(name)
        assert s.full_name == f"{s.name}-v{s.version}" == name


@pytest.mark.parametrize("name", ALL_SETS)
def test_manifest_reproducible(name):
    problems = registry.verify_manifest(name)
    assert problems == [], f"{name}: {problems}"


@pytest.mark.parametrize("name", ALL_SETS)
def test_manifest_committed_for_every_set(name):
    assert name in MANIFESTS
    assert name in SET_DIGESTS
    progs = registry.materialize(name)
    assert set(MANIFESTS[name]) == {p.name for p in progs}


def test_digests_deterministic_across_materializations():
    # bypass the lru_cache: two independent builds of the same set must
    # agree byte for byte (digest covers filename + source of each unit)
    name = "quick-v1"
    first = {p.name: p.digest() for p in registry.get_set(name).builder()}
    second = {p.name: p.digest() for p in registry.get_set(name).builder()}
    assert first == second
    assert first == registry.program_digests(name)


def test_set_digest_covers_program_order_and_content():
    digest = registry.set_digest("quick-v1")
    assert digest == SET_DIGESTS["quick-v1"]
    assert len(digest) == 64  # sha256 hex


def test_suite_set_mirrors_benchmark_suite():
    progs = registry.materialize("suite-v1")
    assert {p.name for p in progs} == {b.name for b in BENCHMARKS}
    by_name = {b.name: b for b in BENCHMARKS}
    for p in progs:
        assert p.source == by_name[p.name].source


def test_suite_specs_hook_returns_benchmarks():
    assert registry.suite_specs() == list(BENCHMARKS)


def test_program_names_unique_within_each_set():
    for name in ALL_SETS:
        progs = registry.materialize(name)
        assert len({p.name for p in progs}) == len(progs), name


def test_unknown_set_raises_keyerror_with_choices():
    with pytest.raises(KeyError) as exc:
        registry.get_set("no-such-set-v9")
    assert "no-such-set-v9" in str(exc.value)


def test_multiunit_source_property_guard():
    progs = [p for p in registry.materialize("gen-multiunit-v1") if p.multi_unit]
    assert progs, "multiunit set contains no multi-unit programs"
    with pytest.raises(ValueError):
        _ = progs[0].source
