"""Quick-mode smoke coverage for every ``benchmarks/bench_*.py`` entry
point (the ``bench`` marker lane: ``pytest -m bench tests/bench``).

Two families:

* the standalone harnesses (``bench_pipeline``, ``bench_incremental``,
  ``bench_wpa``, ``bench_serve``) are imported and driven through their
  ``main()`` with the smallest argument set — one repeat, one seed,
  ``--quick`` — asserting a zero exit and a well-formed JSON artifact;
* the pytest-benchmark suites are exercised through a subprocess pytest
  with one cheap selection each and ``--benchmark-disable``, so the
  timing loop collapses to a single call (guarded on the plugin being
  installed).

These run only in the ``bench`` lane, not in the default tier-1 sweep —
the point is that a refactor cannot silently break a harness that CI
only runs nightly.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BENCH_DIR = REPO_ROOT / "benchmarks"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, BENCH_DIR / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _json_at(path: Path) -> dict:
    assert path.exists(), f"{path} not written"
    return json.loads(path.read_text())


class TestStandaloneHarnesses:
    def test_bench_pipeline(self, tmp_path):
        out = tmp_path / "pipeline.json"
        assert _load("bench_pipeline").main(
            ["--out", str(out), "--repeats", "1"]
        ) == 0
        doc = _json_at(out)
        assert len(doc["benchmarks"]) > 0
        assert doc["total_compile_seconds"] >= 0
        assert "compile_summary" in doc["benchmarks"][0]

    def test_bench_incremental(self, tmp_path):
        out = tmp_path / "incremental.json"
        assert _load("bench_incremental").main(
            ["--out", str(out), "--repeats", "1"]
        ) == 0
        doc = _json_at(out)
        assert [s["functions"] for s in doc["sizes"]] == [1, 4, 16]
        for s in doc["sizes"]:
            assert s["warm_incremental_summary"]["count"] == 1

    def test_bench_wpa(self, tmp_path):
        out = tmp_path / "wpa.json"
        assert _load("bench_wpa").main(
            ["--out", str(out), "--seeds", "1", "--repeats", "1"]
        ) == 0
        doc = _json_at(out)
        assert doc["workloads"]
        assert doc["total_call_dep_wp"] <= doc["total_call_dep_pf"]

    def test_bench_serve(self, tmp_path):
        out = tmp_path / "serve.json"
        assert _load("bench_serve").main(["--quick", "--out", str(out)]) == 0
        doc = _json_at(out)
        assert doc["failures"] == []
        assert doc["daemon_exit_code"] == 0

    def test_decode_path_gates(self, tmp_path):
        # one-iteration decode-v1 run through the real CLI, gated
        # against the committed ceiling baselines
        from repro.bench.cli import main as bench_main

        out = tmp_path / "decode.json"
        rc = bench_main([
            "--set", "quick-v1", "--paths", "decode",
            "--iterations", "1", "--warmup", "0", "--quiet",
            "--gate", str(REPO_ROOT / "benchmarks/baselines/decode-v1.json"),
            "--out", str(out),
        ])
        assert rc == 0
        doc = _json_at(out)
        assert doc["facts"]["decode.roundtrip_ok"] == 1.0
        assert doc["facts"]["decode.blob_bytes"] > 0


_PYTEST_SELECTIONS = {
    "bench_ablations.py": "test_merge_rules_shrink_hli and tomcatv",
    "bench_cache_sensitivity.py": "test_cache_adds_stalls_r4600",
    "bench_cse_refmod.py": "test_fig4_semantics_identical",
    "bench_hli_overhead.py": "test_binary_decode_cost",
    "bench_speedups.py": "test_speedup_row and wc",
    "bench_swp_mii.py": "test_mii_headroom and tomcatv",
    "bench_table1.py": "test_table1_row and wc",
    "bench_table2.py": "test_table2_row and wc",
    "bench_unroll_maint.py": "test_fig6_unroll_maintenance_clones_items",
}


@pytest.mark.skipif(
    importlib.util.find_spec("pytest_benchmark") is None,
    reason="pytest-benchmark not installed",
)
@pytest.mark.parametrize("filename", sorted(_PYTEST_SELECTIONS))
def test_pytest_benchmark_file_smokes(filename):
    proc = subprocess.run(
        [
            sys.executable, "-m", "pytest",
            str(BENCH_DIR / filename),
            "-k", _PYTEST_SELECTIONS[filename],
            "-m", "bench",
            "--benchmark-disable",
            "--no-header", "-q", "-x",
            "-p", "no:cacheprovider",
        ],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, f"{filename}:\n{proc.stdout}\n{proc.stderr}"
