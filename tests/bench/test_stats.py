"""Hand-computed fixtures for the shared statistics primitives.

Every number below was computed by hand from the conventions declared
in :mod:`repro.bench.stats` — midpoint median, *inclusive* quartiles,
sample standard deviation, linearly-interpolated percentiles — so a
silent change of convention (e.g. swapping to exclusive quantiles)
breaks a fixture instead of silently shifting every TRAJECTORY number.
"""

from __future__ import annotations

import math

import pytest

from repro.bench.stats import Summary, geomean, percentile, summarize


class TestSummary:
    def test_four_values_hand_checked(self):
        # the docstring's canonical example: inclusive quartiles of
        # [1, 2, 3, 4] are Q1 = 1.75, Q3 = 3.25
        s = Summary.from_values([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.median == 2.5
        assert s.q1 == pytest.approx(1.75)
        assert s.q3 == pytest.approx(3.25)
        assert s.iqr == pytest.approx(1.5)
        # sample stddev of 1..4: sqrt(((1.5^2)*2 + (0.5^2)*2) / 3)
        assert s.stddev == pytest.approx(math.sqrt(5.0 / 3.0))
        assert s.min == 1.0
        assert s.max == 4.0

    def test_odd_count_median_is_central_value(self):
        s = Summary.from_values([9.0, 1.0, 5.0])
        assert s.median == 5.0
        assert s.min == 1.0 and s.max == 9.0

    def test_even_count_median_is_midpoint(self):
        assert Summary.from_values([1.0, 2.0]).median == 1.5

    def test_single_value_degenerates_cleanly(self):
        s = Summary.from_values([7.25])
        assert (s.count, s.mean, s.median, s.stddev) == (1, 7.25, 7.25, 0.0)
        assert (s.min, s.max, s.q1, s.q3) == (7.25, 7.25, 7.25, 7.25)
        assert s.iqr == 0.0

    def test_constant_sequence_has_zero_spread(self):
        s = Summary.from_values([3.0] * 5)
        assert s.stddev == 0.0
        assert s.iqr == 0.0

    def test_sample_not_population_stddev(self):
        # population stddev of [2, 4] is 1.0; the sample rule gives
        # sqrt(2) — the convention every reporter must share
        assert Summary.from_values([2.0, 4.0]).stddev == pytest.approx(math.sqrt(2.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Summary.from_values([])

    def test_dict_round_trip(self):
        s = Summary.from_values([0.125, 0.5, 0.25, 1.0, 0.75])
        back = Summary.from_dict(s.to_dict(digits=9))
        assert back.count == s.count
        for f in ("mean", "median", "stddev", "min", "max", "q1", "q3"):
            assert getattr(back, f) == pytest.approx(getattr(s, f), abs=1e-9)

    def test_summarize_is_shorthand(self):
        vals = [1.0, 2.0, 3.0]
        assert summarize(vals) == Summary.from_values(vals)


class TestPercentile:
    def test_endpoints(self):
        vals = [10.0, 20.0, 30.0, 40.0]
        assert percentile(vals, 0) == 10.0
        assert percentile(vals, 100) == 40.0

    def test_p50_equals_median(self):
        for vals in ([1.0, 2.0], [5.0, 1.0, 9.0], [1.0, 2.0, 3.0, 4.0]):
            assert percentile(vals, 50) == Summary.from_values(vals).median

    def test_linear_interpolation_hand_checked(self):
        # rank of p75 over 4 values is 0.75 * 3 = 2.25:
        # 30 + 0.25 * (40 - 30) = 32.5
        assert percentile([10.0, 20.0, 30.0, 40.0], 75) == pytest.approx(32.5)

    def test_unsorted_input(self):
        assert percentile([40.0, 10.0, 30.0, 20.0], 75) == pytest.approx(32.5)

    def test_single_value(self):
        assert percentile([3.5], 99) == 3.5

    def test_domain_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([1.0], -1)


class TestGeomean:
    def test_hand_checked(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([1.0, 10.0, 100.0]) == pytest.approx(10.0)

    def test_identity(self):
        assert geomean([5.0]) == pytest.approx(5.0)

    def test_rejects_nonpositive_and_empty(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])
