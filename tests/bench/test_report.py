"""Report model: aggregation semantics and the four output modes."""

from __future__ import annotations

import json

import pytest

from repro.bench.report import SCHEMA, Report
from repro.bench.stats import Summary


def _report() -> Report:
    r = Report(
        set_name="quick-v1",
        set_digest="ab" * 32,
        iterations=3,
        warmup=1,
        program_digests={"p0": "00" * 32, "p1": "11" * 32, "q0": "22" * 32},
    )
    r.add("session", "p0", "pointer", "cold_seconds", [0.2, 0.3, 0.4])
    r.add("session", "p1", "pointer", "cold_seconds", [0.6, 0.8, 1.0])
    r.add("session", "q0", "float", "cold_seconds", [0.1, 0.1, 0.1])
    r.add("serve", "p0", "pointer", "request_seconds", [0.05])
    r.facts["session.warm_hit_ratio"] = 1.0
    return r


class TestAggregation:
    def test_profile_summary_is_over_program_medians(self):
        # pointer medians are 0.3 and 0.8 -> median of medians 0.55;
        # the iteration values must not leak into the population
        by_profile = _report().profile_summary("session", "cold_seconds")
        assert set(by_profile) == {"float", "pointer"}
        assert by_profile["pointer"].count == 2
        assert by_profile["pointer"].median == pytest.approx(0.55)
        assert by_profile["float"].median == pytest.approx(0.1)

    def test_overall_summary(self):
        s = _report().overall_summary("session", "cold_seconds")
        assert s.count == 3
        assert s.median == pytest.approx(0.3)  # medians 0.3, 0.8, 0.1
        assert _report().overall_summary("session", "nope") is None

    def test_paths_and_metrics_sorted(self):
        r = _report()
        assert r.paths() == ["serve", "session"]
        assert r.metrics("session") == ["cold_seconds"]

    def test_add_rejects_empty_values(self):
        with pytest.raises(ValueError):
            _report().add("session", "p", "pointer", "m", [])

    def test_measurement_summary_matches_stats(self):
        rows = _report().rows("session", "cold_seconds")
        m = next(m for m in rows if m.program == "p0")
        assert m.summary == Summary.from_values([0.2, 0.3, 0.4])


class TestJsonRoundTrip:
    def test_full_fidelity(self):
        r = _report()
        back = Report.from_json(r.to_json())
        assert back.set_name == r.set_name
        assert back.set_digest == r.set_digest
        assert back.iterations == r.iterations
        assert back.warmup == r.warmup
        assert back.program_digests == r.program_digests
        assert back.measurements == r.measurements  # raw values survive
        assert back.facts == r.facts

    def test_schema_tag_enforced(self):
        doc = _report().to_dict()
        assert doc["schema"] == SCHEMA
        doc["schema"] = "something-else"
        with pytest.raises(ValueError):
            Report.from_dict(doc)

    def test_json_carries_profile_breakdowns(self):
        doc = json.loads(_report().to_json())
        pointer = doc["profiles"]["session"]["cold_seconds"]["pointer"]
        assert pointer["median"] == pytest.approx(0.55)


class TestCsv:
    def test_round_trip_summaries(self):
        r = _report()
        rows = Report.summaries_from_csv(r.render_csv())
        assert len(rows) == len(r.measurements)
        by_prog = {(row["program"], row["metric"]): row for row in rows}
        s = Summary.from_values([0.2, 0.3, 0.4])
        got = by_prog[("p0", "cold_seconds")]
        assert got["median"] == pytest.approx(s.median)
        assert got["iqr"] == pytest.approx(s.iqr, abs=1e-9)
        assert got["count"] == 3
        assert got["set"] == "quick-v1"
        assert got["profile"] == "pointer"

    def test_header_is_stable(self):
        header = _report().render_csv().splitlines()[0]
        assert header == (
            "set,path,program,profile,metric,"
            "count,mean,median,stddev,iqr,min,max,q1,q3"
        )


class TestRendering:
    def test_brief_mentions_set_and_medians(self):
        text = _report().render_brief()
        assert "quick-v1" in text
        assert "cold_seconds" in text
        assert "3 iterations" in text

    def test_full_breaks_out_profiles(self):
        text = _report().render_full()
        assert "pointer" in text and "float" in text
        assert "per profile" in text

    def test_gate_results_rendered(self):
        r = _report()
        r.gates = [
            {"name": "g", "op": ">=", "value": 1.0, "measured": 2.0,
             "passed": True, "why": ""},
        ]
        assert "gate PASS" in r.render_brief()
