"""Regression gates: threshold evaluation and the CLI exit-code contract.

The contract CI relies on: ``0`` all gates pass, ``1`` a measured
regression, ``2`` the gates could not be evaluated at all.  A broken
harness exiting 0 would silently disable the gate, so the distinction
between 1 and 2 is load-bearing and pinned here.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import cli
from repro.bench.gates import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REGRESSION,
    Gate,
    GateError,
    evaluate,
    load_gates,
)
from repro.bench.report import Report


def _report() -> Report:
    r = Report(set_name="quick-v1", set_digest="cd" * 32, iterations=3, warmup=1)
    r.add("session", "p0", "pointer", "warm_speedup", [4.0])
    r.add("session", "p1", "pointer", "warm_speedup", [6.0])
    r.add("session", "q0", "float", "warm_speedup", [2.0])
    r.facts["session.warm_hit_ratio"] = 1.0
    r.facts["serve.using_remote"] = False
    return r


class TestGateEvaluation:
    def test_pass_and_fail(self):
        report = _report()
        ok, bad = evaluate(
            report,
            [
                Gate("session", "warm_speedup", ">=", 1.5),   # median 4.0
                Gate("session", "warm_speedup", ">=", 100.0),
            ],
        )
        assert ok.passed and ok.measured == pytest.approx(4.0)
        assert not bad.passed

    def test_profile_restriction(self):
        # pointer medians [4, 6] -> 5.0; float -> 2.0
        (res,) = evaluate(
            _report(), [Gate("session", "warm_speedup", ">=", 4.5, profile="pointer")]
        )
        assert res.passed and res.measured == pytest.approx(5.0)
        (res,) = evaluate(
            _report(), [Gate("session", "warm_speedup", ">=", 4.5, profile="float")]
        )
        assert not res.passed

    def test_stat_selection(self):
        (res,) = evaluate(
            _report(), [Gate("session", "warm_speedup", "<=", 6.0, stat="max")]
        )
        assert res.passed and res.measured == pytest.approx(6.0)

    def test_fact_gate(self):
        (res,) = evaluate(
            _report(), [Gate("fact", "session.warm_hit_ratio", "==", 1.0)]
        )
        assert res.passed and res.measured == 1.0

    def test_unknown_metric_is_an_error_not_a_pass(self):
        with pytest.raises(GateError):
            evaluate(_report(), [Gate("session", "no_such_metric", ">=", 0.0)])

    def test_unknown_fact_profile_stat_op(self):
        for gate in (
            Gate("fact", "missing.key", ">=", 0.0),
            Gate("session", "warm_speedup", ">=", 0.0, profile="ghost"),
            Gate("session", "warm_speedup", ">=", 0.0, stat="p99"),
            Gate("session", "warm_speedup", "~=", 0.0),
        ):
            with pytest.raises(GateError):
                evaluate(_report(), [gate])

    def test_boolean_fact_rejected(self):
        with pytest.raises(GateError):
            evaluate(_report(), [Gate("fact", "serve.using_remote", "==", 0.0)])

    def test_result_dict_shape(self):
        (res,) = evaluate(_report(), [Gate("session", "warm_speedup", ">=", 1.0,
                                           why="TRAJECTORY.md: warm ~4x")])
        doc = res.to_dict()
        assert doc["passed"] is True
        assert doc["why"] == "TRAJECTORY.md: warm ~4x"
        assert doc["name"] == "session.warm_speedup.median"


class TestBaselineLoading:
    def test_load_round_trip(self, tmp_path):
        baseline = tmp_path / "quick-v1.json"
        baseline.write_text(json.dumps({
            "set": "quick-v1",
            "gates": [
                {"path": "session", "metric": "warm_speedup", "op": ">=",
                 "value": 1.5, "why": "warm must win"},
                {"path": "fact", "metric": "session.warm_hit_ratio",
                 "op": "==", "value": 1.0},
            ],
        }))
        set_name, gates = load_gates(str(baseline))
        assert set_name == "quick-v1"
        assert [g.passed for g in evaluate(_report(), gates)] == [True, True]

    def test_missing_file(self):
        with pytest.raises(GateError):
            load_gates("/nonexistent/baseline.json")

    def test_malformed_baseline(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text('{"set": "quick-v1"}')  # no gates key
        with pytest.raises(GateError):
            load_gates(str(p))
        p.write_text("not json at all")
        with pytest.raises(GateError):
            load_gates(str(p))


class TestCliExitContract:
    """Drive the real CLI on the smallest set: the exit codes are API."""

    ARGS = ["--set", "quick-v1", "--iterations", "1", "--warmup", "0",
            "--paths", "serve", "--quiet"]

    def test_seeded_regression_exits_1(self, tmp_path, capsys):
        baseline = tmp_path / "quick-v1.json"
        baseline.write_text(json.dumps({
            "set": "quick-v1",
            "gates": [{"path": "serve", "metric": "request_seconds",
                       "op": "<=", "value": 0.0,
                       "why": "impossible on purpose: compile time cannot be 0"}],
        }))
        assert cli.main(self.ARGS + ["--gate", str(baseline)]) == EXIT_REGRESSION
        assert "FAILED" in capsys.readouterr().err

    def test_passing_gate_exits_0(self, tmp_path, capsys):
        baseline = tmp_path / "quick-v1.json"
        baseline.write_text(json.dumps({
            "set": "quick-v1",
            "gates": [{"path": "serve", "metric": "request_seconds",
                       "op": ">", "value": 0.0}],
        }))
        out = tmp_path / "report.json"
        code = cli.main(self.ARGS + ["--gate", str(baseline), "--out", str(out)])
        assert code == EXIT_OK
        doc = json.loads(out.read_text())
        assert doc["gates"] and all(g["passed"] for g in doc["gates"])
        assert "pass" in capsys.readouterr().err

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "quick-v1.json"
        baseline.write_text("{broken")
        assert cli.main(self.ARGS + ["--gate", str(baseline)]) == EXIT_ERROR
        capsys.readouterr()

    def test_wrong_set_baseline_exits_2(self, tmp_path, capsys):
        baseline = tmp_path / "other.json"
        baseline.write_text(json.dumps({"set": "suite-v1", "gates": []}))
        assert cli.main(self.ARGS + ["--gate", str(baseline)]) == EXIT_ERROR
        capsys.readouterr()

    def test_unknown_set_exits_2(self, capsys):
        assert cli.main(["--set", "nope-v9", "--quiet"]) == EXIT_ERROR
        capsys.readouterr()
