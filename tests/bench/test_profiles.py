"""Property tests: every program in a profiled set exhibits its profile.

The registry *filters* generated seeds through these predicates, so the
tests assert the contract end to end: materialize each set and check
the declared shape holds for every member — pointer-heavy programs
contain pointer operations, float-heavy programs contain float
arithmetic, deep-call-graph programs exceed the declared depth floor.
The predicates themselves are exercised on hand-written sources too, so
a predicate that degenerates to "always true" cannot pass.
"""

from __future__ import annotations

import pytest

from repro.bench.registry import (
    BRANCH_FLOOR,
    DEEPCALL_DEPTH_FLOOR,
    FLOAT_OP_FLOOR,
    POINTER_OP_FLOOR,
    branch_count,
    call_depth,
    float_op_count,
    materialize,
    pointer_op_count,
)
from repro.frontend import parse_and_check


def _whole(prog) -> str:
    return "\n".join(src for _, src in prog.units)


@pytest.mark.parametrize("set_name", ["gen-pointer-v1"])
def test_pointer_sets_contain_pointer_ops(set_name):
    for prog in materialize(set_name):
        assert prog.profile == "pointer"
        assert pointer_op_count(_whole(prog)) >= POINTER_OP_FLOOR, prog.name


@pytest.mark.parametrize("set_name", ["gen-float-v1"])
def test_float_sets_contain_float_ops(set_name):
    for prog in materialize(set_name):
        assert prog.profile == "float"
        assert float_op_count(_whole(prog)) >= FLOAT_OP_FLOOR, prog.name


@pytest.mark.parametrize("set_name", ["gen-branchy-v1"])
def test_branchy_sets_contain_branches(set_name):
    for prog in materialize(set_name):
        assert branch_count(_whole(prog)) >= BRANCH_FLOOR, prog.name


@pytest.mark.parametrize("set_name", ["gen-deepcall-v1"])
def test_deepcall_sets_exceed_depth_floor(set_name):
    for prog in materialize(set_name):
        assert call_depth(_whole(prog)) >= DEEPCALL_DEPTH_FLOOR, prog.name


def test_multiunit_sets_are_multi_unit():
    by_profile = {"multiunit": [], "multiunit-large": []}
    for prog in materialize("gen-multiunit-v1"):
        assert prog.multi_unit
        by_profile[prog.profile].append(len(prog.units))
    # small band: 3-unit programs; large band: 8-16 units for the
    # partitioned back end to spread across workers
    assert by_profile["multiunit"] and all(
        n == 3 for n in by_profile["multiunit"]
    )
    assert by_profile["multiunit-large"] and all(
        8 <= n <= 16 for n in by_profile["multiunit-large"]
    )


def test_quick_set_spans_profiles():
    profiles = {p.profile for p in materialize("quick-v1")}
    assert {"pointer", "float", "branchy", "deepcall", "multiunit"} <= profiles


@pytest.mark.parametrize(
    "set_name", ["quick-v1", "gen-deepcall-v1", "gen-multiunit-v1"]
)
def test_profiled_programs_typecheck(set_name):
    """Membership is textual; compilability is the real floor."""
    for prog in materialize(set_name):
        for _, source in prog.units:
            parse_and_check(source)


# -- predicate unit fixtures (guard against degenerate predicates) ----------

_FLAT = """int ga;
int main() {
    ga = 2;
    return ga;
}
"""

_CHAIN = """int f3(int a) { return a + 1; }
int f2(int a) { return f3(a) + 1; }
int f1(int a) { return f2(a) + 1; }
int f0(int a) { return f1(a) + 1; }
int main() {
    return f0(1);
}
"""


def test_call_depth_hand_checked():
    assert call_depth(_FLAT) == 0
    assert call_depth(_CHAIN) == 4


def test_call_depth_ignores_recursion_cycles():
    src = "int f0(int a) { return f0(a); }\nint main() { return f0(1); }\n"
    assert call_depth(src) == 1


def test_pointer_and_branch_predicates_reject_flat_code():
    assert pointer_op_count(_FLAT) == 0
    assert branch_count(_FLAT) == 0
    assert float_op_count(_FLAT) == 0


def test_float_predicate_ignores_decls_and_checksum():
    src = (
        "double gd0;\n"
        "gd0 = 1.5;\n"          # deterministic init — excluded
        "int chk0; chk0 = (gd0 > 1.0);\n"  # checksum — excluded
    )
    assert float_op_count(src) == 0
    assert float_op_count("gd0 = gd0 * 2.5;\n" * 3) == 3
