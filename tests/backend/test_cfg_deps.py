"""CFG construction and local dependence test unit tests."""

from repro.backend.cfg import build_cfg
from repro.backend.deps import LocalDependenceTest, may_conflict
from repro.backend.lowering import lower_program
from repro.backend.rtl import MemRef, Opcode, new_reg
from repro.frontend import parse_and_check


def cfg_of(src: str, name: str = "f"):
    prog, table = parse_and_check(src)
    return build_cfg(lower_program(prog, table).functions[name])


class TestCFG:
    def test_straightline_single_block(self):
        cfg = cfg_of("void f() { int x; x = 1; x = x + 2; }")
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].succs == []

    def test_if_else_diamond(self):
        cfg = cfg_of("int f(int c) { int x; if (c) x = 1; else x = 2; return x; }")
        entry = cfg.blocks[0]
        assert len(entry.succs) == 2

    def test_loop_back_edge(self):
        cfg = cfg_of("void f() { int i; for (i = 0; i < 4; i++) { } }")
        back_edges = [
            (b.index, s) for b in cfg.blocks for s in b.succs if s <= b.index
        ]
        assert back_edges, "loop must produce a back edge"

    def test_flatten_preserves_order(self):
        src = "int g;\nvoid f() { int i; for (i = 0; i < 4; i++) g = g + i; }"
        prog, table = parse_and_check(src)
        fn = lower_program(prog, table).functions["f"]
        cfg = build_cfg(fn)
        assert [i.uid for i in cfg.flatten()] == [i.uid for i in fn.insns]

    def test_preds_match_succs(self):
        cfg = cfg_of("int f(int c) { int x; x = 0; while (c) { c--; x++; } return x; }")
        for b in cfg.blocks:
            for s in b.succs:
                assert b.index in cfg.blocks[s].preds

    def test_block_body_strips_label_and_branch(self):
        cfg = cfg_of("void f() { int i; for (i = 0; i < 4; i++) { } }")
        for b in cfg.blocks:
            body = b.body()
            assert all(bi.op is not Opcode.LABEL for bi in body)
            assert all(not bi.is_branch for bi in body)


def mem(symbol=None, offset=None, base=None, store=False, width=4, aliased=True):
    return MemRef(
        addr=new_reg(),
        width=width,
        is_store=store,
        known_symbol=symbol,
        known_offset=offset,
        base_symbol=base,
        may_be_aliased=aliased,
    )


class TestLocalDependence:
    def test_distinct_scalars_independent(self):
        assert not may_conflict(mem("x", 0), mem("y", 0, store=True))

    def test_same_scalar_conflicts(self):
        assert may_conflict(mem("x", 0), mem("x", 0, store=True))

    def test_disjoint_offsets_independent(self):
        assert not may_conflict(mem("s", 0, width=4), mem("s", 4, width=4, store=True))

    def test_overlapping_offsets_conflict(self):
        assert may_conflict(mem("s", 0, width=8), mem("s", 4, width=4, store=True))

    def test_unknown_vs_scalar_conflicts(self):
        # GCC 2.7 cannot disambiguate (mem (reg)) from a global scalar
        assert may_conflict(mem(), mem("g", 0, store=True))

    def test_unknown_vs_unknown_conflicts(self):
        assert may_conflict(mem(store=True), mem())

    def test_base_symbol_not_consulted(self):
        """GCC 2.7 loses array bases: two different arrays still conflict."""
        assert may_conflict(mem(base="a"), mem(base="b", store=True))

    def test_compiler_private_slot_safe(self):
        # outgoing-arg slots can't be reached by user pointers
        assert not may_conflict(mem("__argslot4", 0, aliased=False), mem(store=True))

    def test_counter_wrapper(self):
        t = LocalDependenceTest()
        t.true_dependence(mem("x", 0), mem("x", 0, store=True))
        t.true_dependence(mem("x", 0), mem("y", 0, store=True))
        assert t.queries == 2
        assert t.conflicts == 1
