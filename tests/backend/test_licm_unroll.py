"""LICM and loop unrolling tests, with HLI maintenance integration."""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.cfg import build_cfg
from repro.backend.licm import run_licm
from repro.backend.rtl import Opcode
from repro.backend.unroll import run_unroll
from repro.hli.query import HLIQuery
from repro.machine.executor import execute
from repro.workloads.suite import BENCHMARKS


def compile_raw(src: str, name="t.c"):
    return compile_source(src, name, CompileOptions(schedule=False))


class TestLICM:
    LOOP = """int a[64];
int bias;
int main() {
    int i, s;
    s = 0;
    for (i = 0; i < 64; i++) {
        s = s + a[i] * bias;
    }
    return s;
}
"""

    def test_alu_constants_hoisted(self):
        comp = compile_raw(self.LOOP)
        fn = comp.rtl.functions["main"]
        stats = run_licm(fn)
        assert stats.alu_hoisted > 0

    def test_invariant_load_requires_hli(self):
        # `bias` is loaded every iteration; a[] stores don't exist, but the
        # local test cannot separate `bias` from the a[i] loads... actually
        # there are no stores here, so even the local test hoists it.
        comp = compile_raw(self.LOOP)
        fn = comp.rtl.functions["main"]
        stats = run_licm(fn, use_hli=False)
        assert stats.loads_hoisted >= 1

    STORE_LOOP = """int a[64];
int bias;
int main() {
    int i;
    for (i = 0; i < 64; i++) {
        a[i] = bias + i;
    }
    return a[10];
}
"""

    def test_local_test_blocks_hoist_past_array_store(self):
        comp = compile_raw(self.STORE_LOOP)
        fn = comp.rtl.functions["main"]
        stats = run_licm(fn, use_hli=False)
        assert stats.loads_hoisted == 0  # a[i] store may alias bias for GCC

    def test_hli_enables_hoist_past_array_store(self):
        comp = compile_raw(self.STORE_LOOP)
        fn = comp.rtl.functions["main"]
        query = HLIQuery(comp.hli.entry("main"))
        stats = run_licm(fn, use_hli=True, query=query, entry=comp.hli.entry("main"))
        assert stats.loads_hoisted >= 1

    def test_semantics_preserved(self):
        base = execute(compile_raw(self.STORE_LOOP).rtl, collect_trace=False).ret
        comp = compile_raw(self.STORE_LOOP)
        fn = comp.rtl.functions["main"]
        query = HLIQuery(comp.hli.entry("main"))
        run_licm(fn, use_hli=True, query=query, entry=comp.hli.entry("main"))
        assert execute(comp.rtl, collect_trace=False).ret == base

    def test_variant_load_not_hoisted(self):
        src = """int a[64];
int main() {
    int i, s;
    s = 0;
    for (i = 0; i < 64; i++) {
        s = s + a[i];
    }
    return s;
}
"""
        comp = compile_raw(src)
        fn = comp.rtl.functions["main"]
        query = HLIQuery(comp.hli.entry("main"))
        stats = run_licm(fn, use_hli=True, query=query, entry=comp.hli.entry("main"))
        assert stats.loads_hoisted == 0  # a[i] depends on i


class TestUnroll:
    LOOP = """int a[64];
int main() {
    int i, s;
    s = 0;
    for (i = 0; i < 64; i++) {
        s = s + a[i];
        a[i] = s;
    }
    return s;
}
"""

    def _compile(self):
        comp = compile_raw(self.LOOP)
        fn = comp.rtl.functions["main"]
        query = HLIQuery(comp.hli.entry("main"))
        return comp, fn, query

    def test_unroll_fires(self):
        comp, fn, query = self._compile()
        stats = run_unroll(fn, 4, query=query, entry=comp.hli.entry("main"))
        assert stats.loops_unrolled == 1
        assert stats.copies_made == 3

    def test_unrolled_block_is_larger(self):
        comp, fn, query = self._compile()
        sizes_before = max(len(b.insns) for b in build_cfg(fn).blocks)
        run_unroll(fn, 4, query=query, entry=comp.hli.entry("main"))
        sizes_after = max(len(b.insns) for b in build_cfg(fn).blocks)
        assert sizes_after > 2 * sizes_before

    def test_semantics_preserved(self):
        base = execute(compile_raw(self.LOOP).rtl, collect_trace=False).ret
        comp, fn, query = self._compile()
        run_unroll(fn, 4, query=query, entry=comp.hli.entry("main"))
        assert execute(comp.rtl, collect_trace=False).ret == base

    def test_cloned_memrefs_have_items(self):
        comp, fn, query = self._compile()
        run_unroll(fn, 2, query=query, entry=comp.hli.entry("main"))
        mems = [i for i in fn.insns if i.mem is not None]
        assert all(i.hli_item is not None for i in mems)

    def test_indivisible_trip_skipped(self):
        src = self.LOOP.replace("i < 64", "i < 63")
        comp = compile_raw(src)
        fn = comp.rtl.functions["main"]
        query = HLIQuery(comp.hli.entry("main"))
        stats = run_unroll(fn, 4, query=query, entry=comp.hli.entry("main"))
        assert stats.loops_unrolled == 0

    def test_loop_with_branch_skipped(self):
        src = """int a[64];
int main() {
    int i, s;
    s = 0;
    for (i = 0; i < 64; i++) {
        if (a[i] > 0) s = s + 1;
    }
    return s;
}
"""
        comp = compile_raw(src)
        fn = comp.rtl.functions["main"]
        query = HLIQuery(comp.hli.entry("main"))
        stats = run_unroll(fn, 2, query=query, entry=comp.hli.entry("main"))
        assert stats.loops_unrolled == 0

    @pytest.mark.parametrize("factor", [2, 4, 8])
    def test_factors(self, factor):
        comp, fn, query = self._compile()
        stats = run_unroll(fn, factor, query=query, entry=comp.hli.entry("main"))
        assert stats.loops_unrolled == 1
        assert execute(comp.rtl, collect_trace=False).ret == execute(
            compile_raw(self.LOOP).rtl, collect_trace=False
        ).ret


class TestFullPipelineOnSuite:
    @pytest.mark.parametrize("bench", BENCHMARKS[:6], ids=lambda b: b.name)
    def test_all_passes_preserve_results(self, bench):
        base = execute(
            compile_source(bench.source, bench.name, CompileOptions()).rtl,
            input_text=bench.input_text,
            collect_trace=False,
        )
        opt = execute(
            compile_source(
                bench.source,
                bench.name,
                CompileOptions(cse=True, licm=True, unroll=2),
            ).rtl,
            input_text=bench.input_text,
            collect_trace=False,
        )
        assert opt.ret == base.ret
        assert opt.output == base.output
