"""Software-pipelining MII analysis tests."""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.swp import _Edge, _positive_cycle, _rec_mii, analyze_loop_pipelining
from repro.hli.query import HLIQuery


def compile_for(src: str, name="swp.c"):
    comp = compile_source(src, name, CompileOptions(schedule=False))
    fn = comp.rtl.functions["main"]
    query = HLIQuery(comp.hli.entry("main"))
    return fn, query


class TestCycleMachinery:
    def test_no_edges_ii_one(self):
        assert _rec_mii(3, [], upper=100) == 1

    def test_simple_recurrence(self):
        # a 6-cycle latency loop carried at distance 1 => II >= 6
        edges = [
            _Edge(0, 1, latency=3, distance=0),
            _Edge(1, 0, latency=3, distance=1),
        ]
        assert _rec_mii(2, edges, upper=100) == 6

    def test_distance_two_halves_ii(self):
        edges = [
            _Edge(0, 1, latency=3, distance=0),
            _Edge(1, 0, latency=3, distance=2),
        ]
        assert _rec_mii(2, edges, upper=100) == 3

    def test_positive_cycle_detection(self):
        edges = [_Edge(0, 0, latency=5, distance=1)]
        assert _positive_cycle(1, edges, ii=4)
        assert not _positive_cycle(1, edges, ii=5)


class TestLoopAnalysis:
    INDEPENDENT = """double a[128];
double b[128];
int main() {
    int i;
    for (i = 0; i < 128; i++) {
        a[i] = b[i] * 2.0;
    }
    return 0;
}
"""

    RECURRENCE = """double a[128];
int main() {
    int i;
    for (i = 1; i < 128; i++) {
        a[i] = a[i-1] * 0.5 + 1.0;
    }
    return 0;
}
"""

    def test_independent_loop_hli_beats_gcc(self):
        fn, query = compile_for(self.INDEPENDENT)
        reports = analyze_loop_pipelining(fn, query)
        assert reports
        r = reports[0]
        # Conservative cross-iteration store->load recurrences inflate GCC's
        # bound; HLI has no memory recurrence at all.
        assert r.hli.rec_mii < r.gcc.rec_mii
        assert r.headroom >= 1.0
        # on a wide machine, the recurrence bound (not resources) is the
        # binding constraint, and there the HLI headroom is real
        wide = analyze_loop_pipelining(fn, query, issue_width=16)[0]
        assert wide.headroom > 1.0

    def test_true_recurrence_binds_both(self):
        fn, query = compile_for(self.RECURRENCE)
        reports = analyze_loop_pipelining(fn, query)
        r = next(rep for rep in reports if rep.hli.insns > 8)
        # the a[i-1] -> a[i] chain is real: HLI cannot dissolve it
        assert r.hli.rec_mii > 1
        assert r.hli.rec_mii <= r.gcc.rec_mii

    def test_res_mii_floor(self):
        fn, query = compile_for(self.INDEPENDENT)
        reports = analyze_loop_pipelining(fn, query, issue_width=4)
        for r in reports:
            assert r.gcc.res_mii == max(1, -(-r.gcc.insns // 4))
            assert r.gcc.mii >= r.gcc.res_mii

    def test_without_query_no_headroom(self):
        fn, _ = compile_for(self.INDEPENDENT)
        reports = analyze_loop_pipelining(fn, query=None)
        for r in reports:
            assert r.headroom == 1.0

    def test_loops_with_calls_skipped(self):
        src = """int g;
void tick() { g = g + 1; }
int main() {
    int i;
    for (i = 0; i < 8; i++) { tick(); }
    return g;
}
"""
        fn, query = compile_for(src)
        reports = analyze_loop_pipelining(fn, query)
        assert reports == []
