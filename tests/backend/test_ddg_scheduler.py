"""DDG construction (Figure 5) and list-scheduler tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CompileOptions, compile_source
from repro.backend.cfg import build_cfg
from repro.backend.ddg import DDGBuilder, DDGMode, DepStats
from repro.backend.rtl import BRANCH_OPS, Opcode
from repro.backend.scheduler import schedule_block, schedule_function
from repro.hli.query import HLIQuery
from repro.machine.latencies import r4600_latency
from repro.workloads.generators import random_affine_loop


STENCIL = """double u[64];
double w[64];
int main() {
    int i;
    for (i = 1; i < 63; i++) {
        w[i] = u[i-1] + u[i+1];
        u[i] = w[i] * 0.5;
    }
    return 0;
}
"""


def compile_modes(src):
    out = {}
    for mode in DDGMode:
        out[mode] = compile_source(src, "t.c", CompileOptions(mode=mode))
    return out


class TestDDGModes:
    def test_hli_removes_edges_gcc_keeps(self):
        comps = compile_modes(STENCIL)
        gcc = comps[DDGMode.GCC].total_dep_stats()
        hli = comps[DDGMode.COMBINED].total_dep_stats()
        assert gcc.total_tests == hli.total_tests
        assert hli.combined_yes < gcc.gcc_yes

    def test_combined_is_and(self):
        comps = compile_modes(STENCIL)
        s = comps[DDGMode.COMBINED].total_dep_stats()
        assert s.combined_yes <= min(s.gcc_yes, s.hli_yes)

    def test_reduction_property(self):
        s = compile_modes(STENCIL)[DDGMode.COMBINED].total_dep_stats()
        assert s.reduction == 1.0 - s.combined_yes / s.gcc_yes

    def test_unknown_items_conservative(self):
        # without a query object, HLI mode must treat everything as dependent
        comp = compile_source(STENCIL, "t.c", CompileOptions(schedule=False))
        fn = comp.rtl.functions["main"]
        cfg = build_cfg(fn)
        builder = DDGBuilder(mode=DDGMode.HLI, query=None)
        for block in cfg.blocks:
            builder.build(block.body())
        s = builder.stats
        assert s.hli_yes == s.total_tests

    def test_stats_merge(self):
        a = DepStats(total_tests=5, gcc_yes=3, hli_yes=2, combined_yes=1)
        b = DepStats(total_tests=1, gcc_yes=1, hli_yes=1, combined_yes=1)
        a.merge(b)
        assert (a.total_tests, a.gcc_yes, a.hli_yes, a.combined_yes) == (6, 4, 3, 2)


class TestCallEdges:
    SRC = """int counter;
int data[8];
void bump() { counter = counter + 1; }
int main() {
    data[0] = 1;
    bump();
    data[1] = data[0] + 2;
    return data[1];
}
"""

    def _block_with_call(self, comp):
        fn = comp.rtl.functions["main"]
        cfg = build_cfg(fn)
        for block in cfg.blocks:
            if any(i.op is Opcode.CALL for i in block.body()):
                return block.body()
        raise AssertionError("no call block")

    def test_gcc_mode_call_blocks_everything(self):
        comp = compile_source(self.SRC, "c.c", CompileOptions(schedule=False))
        body = self._block_with_call(comp)
        builder = DDGBuilder(mode=DDGMode.GCC)
        ddg = builder.build(body)
        call_pos = next(i for i, x in enumerate(body) if x.op is Opcode.CALL)
        mem_pos = [i for i, x in enumerate(body) if x.mem is not None]
        for m in mem_pos:
            assert (
                m in ddg.preds[call_pos]
                or m in ddg.succs[call_pos]
                or m == call_pos
            )

    def test_hli_mode_frees_unrelated_memory(self):
        comp = compile_source(self.SRC, "c.c", CompileOptions(schedule=False))
        body = self._block_with_call(comp)
        query = HLIQuery(comp.hli.entry("main"))
        builder = DDGBuilder(mode=DDGMode.COMBINED, query=query)
        ddg = builder.build(body)
        call_pos = next(i for i, x in enumerate(body) if x.op is Opcode.CALL)
        # bump() touches only `counter`: data[] refs need no call edge
        data_refs = [
            i
            for i, x in enumerate(body)
            if x.mem is not None and x.mem.base_symbol == "data"
        ]
        for m in data_refs:
            assert m not in ddg.preds[call_pos]
            assert m not in ddg.succs[call_pos]


class TestScheduler:
    def test_schedule_is_permutation(self):
        comp = compile_source(STENCIL, "t.c", CompileOptions(schedule=False))
        fn = comp.rtl.functions["main"]
        before = sorted(i.uid for i in fn.insns)
        schedule_function(fn, DDGMode.GCC)
        after = sorted(i.uid for i in fn.insns)
        assert before == after

    def test_branches_stay_at_block_ends(self):
        comp = compile_source(STENCIL, "t.c", CompileOptions(schedule=False))
        fn = comp.rtl.functions["main"]
        schedule_function(fn, DDGMode.COMBINED, query=HLIQuery(comp.hli.entry("main")))
        cfg = build_cfg(fn)
        for block in cfg.blocks:
            for insn in block.insns[:-1]:
                assert insn.op not in BRANCH_OPS or insn.op is Opcode.RET

    def test_ddg_order_respected(self):
        comp = compile_source(STENCIL, "t.c", CompileOptions(schedule=False))
        fn = comp.rtl.functions["main"]
        cfg = build_cfg(fn)
        for block in cfg.blocks:
            body = block.body()
            builder = DDGBuilder(mode=DDGMode.GCC)
            ddg = builder.build(list(body))
            order = schedule_block(list(body), DDGBuilder(mode=DDGMode.GCC), r4600_latency)
            pos = {insn.uid: k for k, insn in enumerate(order)}
            for i, succs in enumerate(ddg.succs):
                for j in succs:
                    assert pos[ddg.insns[i].uid] < pos[ddg.insns[j].uid]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1000))
    def test_scheduling_preserves_semantics(self, seed):
        """Random affine programs produce identical results under every mode."""
        from repro.machine.executor import execute

        src, expected = random_affine_loop(seed)
        results = set()
        for mode in DDGMode:
            comp = compile_source(src, "r.c", CompileOptions(mode=mode))
            res = execute(comp.rtl, collect_trace=False)
            results.add(res.ret)
        assert results == {expected[16]}
