"""RTL IR unit tests."""

from repro.backend.rtl import (
    BRANCH_OPS,
    Insn,
    MemRef,
    Opcode,
    RTLFunction,
    RTLProgram,
    new_reg,
)


class TestReg:
    def test_fresh_regs_unique(self):
        a, b = new_reg(), new_reg()
        assert a.rid != b.rid

    def test_float_flag(self):
        f = new_reg(is_float=True)
        assert f.is_float
        assert str(f).startswith("%f")

    def test_named_reg_str(self):
        r = new_reg(name="sum")
        assert "sum" in str(r)


class TestInsn:
    def test_src_regs_includes_mem_addr(self):
        addr = new_reg()
        val = new_reg()
        insn = Insn(Opcode.STORE, srcs=(val,), mem=MemRef(addr=addr, is_store=True))
        rids = {r.rid for r in insn.src_regs()}
        assert rids == {addr.rid, val.rid}

    def test_src_regs_skips_immediates(self):
        r = new_reg()
        insn = Insn(Opcode.ADD, dst=new_reg(), srcs=(r, 5))
        assert [x.rid for x in insn.src_regs()] == [r.rid]

    def test_predicates(self):
        assert Insn(Opcode.CALL, callee="f").is_call
        assert Insn(Opcode.J, label="x").is_branch
        assert Insn(Opcode.LOAD, dst=new_reg(), mem=MemRef(addr=new_reg())).is_mem
        assert not Insn(Opcode.ADD, dst=new_reg(), srcs=(1, 2)).is_mem

    def test_branch_ops_complete(self):
        assert Opcode.RET in BRANCH_OPS
        assert Opcode.BEQZ in BRANCH_OPS
        assert Opcode.LABEL not in BRANCH_OPS

    def test_uid_unique(self):
        a = Insn(Opcode.NOP)
        b = Insn(Opcode.NOP)
        assert a.uid != b.uid

    def test_str_contains_line_and_item(self):
        insn = Insn(Opcode.LOAD, dst=new_reg(), mem=MemRef(addr=new_reg()), line=42)
        insn.hli_item = 7
        text = str(insn)
        assert "line 42" in text and "item 7" in text


class TestMemRefStr:
    def test_known_symbol(self):
        m = MemRef(addr=new_reg(), known_symbol="g", known_offset=0)
        assert "&g" in str(m)

    def test_base_symbol(self):
        m = MemRef(addr=new_reg(), base_symbol="arr")
        assert "arr" in str(m)

    def test_store_tag(self):
        m = MemRef(addr=new_reg(), is_store=True)
        assert str(m).startswith("st[")


class TestRTLFunction:
    def test_labels_index(self):
        fn = RTLFunction(name="f")
        fn.insns = [
            Insn(Opcode.LABEL, label="a"),
            Insn(Opcode.NOP),
            Insn(Opcode.LABEL, label="b"),
        ]
        assert fn.labels() == {"a": 0, "b": 2}

    def test_mem_insns(self):
        fn = RTLFunction(name="f")
        fn.insns = [
            Insn(Opcode.NOP),
            Insn(Opcode.LOAD, dst=new_reg(), mem=MemRef(addr=new_reg())),
        ]
        assert len(list(fn.mem_insns())) == 1

    def test_dump_is_readable(self):
        fn = RTLFunction(name="f")
        fn.insns = [Insn(Opcode.LI, dst=new_reg(), imm=3)]
        assert "li" in fn.dump()


class TestRTLProgram:
    def test_function_lookup(self):
        prog = RTLProgram()
        fn = RTLFunction(name="main")
        prog.functions["main"] = fn
        assert prog.function("main") is fn
