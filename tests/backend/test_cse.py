"""CSE tests: value numbering, store invalidation, Figure 4 call behavior."""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.cse import run_cse
from repro.backend.rtl import Opcode
from repro.hli.query import HLIQuery
from repro.machine.executor import execute


def compile_raw(src: str):
    return compile_source(src, "cse.c", CompileOptions(schedule=False))


class TestValueNumbering:
    def test_repeated_expression_eliminated(self):
        src = "int f(int a, int b) { int x, y; x = a * b + 1; y = a * b + 1; return x + y; }"
        comp = compile_raw(src)
        fn = comp.rtl.functions["f"]
        muls_before = sum(1 for i in fn.insns if i.op is Opcode.MUL)
        stats = run_cse(fn)
        muls_after = sum(1 for i in fn.insns if i.op is Opcode.MUL)
        assert stats.alu_eliminated > 0
        assert muls_after < muls_before
        res = execute(comp.rtl, "f", args=(3, 4), collect_trace=False)
        assert res.ret == 26

    def test_redefined_operand_blocks_reuse(self):
        src = "int f(int a) { int x, y; x = a + 1; a = a + 5; y = a + 1; return x + y; }"
        comp = compile_raw(src)
        fn = comp.rtl.functions["f"]
        run_cse(fn)
        res = execute(comp.rtl, "f", args=(10,), collect_trace=False)
        assert res.ret == 11 + 16

    def test_repeated_load_eliminated(self):
        src = "int g;\nint f() { int x, y; x = g; y = g; return x + y; }"
        comp = compile_raw(src)
        fn = comp.rtl.functions["f"]
        stats = run_cse(fn)
        assert stats.loads_eliminated == 1
        loads = sum(1 for i in fn.insns if i.op is Opcode.LOAD)
        assert loads == 1

    def test_store_forwarding(self):
        src = "int g;\nint f(int v) { g = v; return g; }"
        comp = compile_raw(src)
        fn = comp.rtl.functions["f"]
        stats = run_cse(fn)
        assert stats.loads_eliminated == 1
        res = execute(comp.rtl, "f", args=(42,), collect_trace=False)
        assert res.ret == 42

    def test_aliasing_store_invalidates(self):
        # without HLI, a store through a pointer kills every load entry
        src = "int g;\nint f(int *p) { int x, y; x = g; *p = 9; y = g; return x + y; }"
        comp = compile_raw(src)
        fn = comp.rtl.functions["f"]
        stats = run_cse(fn)
        assert stats.loads_eliminated == 0

    def test_hli_item_deleted_on_elimination(self):
        src = "int g;\nint f() { int x, y; x = g; y = g; return x + y; }"
        comp = compile_raw(src)
        fn = comp.rtl.functions["f"]
        entry = comp.hli.entry("f")
        items_before = entry.line_table.num_items
        run_cse(fn, entry=entry)
        assert entry.line_table.num_items == items_before - 1


class TestFigure4CallBehavior:
    SRC = """int counter;
int data[16];
void bump() { counter = counter + 1; }
int f() {
    int x, y;
    x = data[5];
    bump();
    y = data[5];
    return x + y + counter;
}
"""

    def test_without_hli_call_purges_everything(self):
        comp = compile_raw(self.SRC)
        fn = comp.rtl.functions["f"]
        stats = run_cse(fn, use_hli=False)
        assert stats.loads_eliminated == 0
        assert stats.entries_kept_across_calls == 0

    def test_with_hli_unrelated_entry_survives(self):
        comp = compile_raw(self.SRC)
        fn = comp.rtl.functions["f"]
        query = HLIQuery(comp.hli.entry("f"))
        stats = run_cse(fn, use_hli=True, query=query, entry=comp.hli.entry("f"))
        # data[5] is untouched by bump(): its entry survives the call and
        # the second load is eliminated.
        assert stats.entries_kept_across_calls > 0
        assert stats.loads_eliminated >= 1

    def test_semantics_preserved_both_ways(self):
        results = []
        for use_hli in (False, True):
            comp = compile_raw(self.SRC)
            fn = comp.rtl.functions["f"]
            query = HLIQuery(comp.hli.entry("f")) if use_hli else None
            run_cse(fn, use_hli=use_hli, query=query, entry=comp.hli.entry("f"))
            res = execute(comp.rtl, "f", collect_trace=False)
            results.append(res.ret)
        assert results[0] == results[1]

    def test_modified_location_still_purged_with_hli(self):
        src = """int counter;
void bump() { counter = counter + 1; }
int f() {
    int x, y;
    x = counter;
    bump();
    y = counter;
    return x * 100 + y;
}
"""
        comp = compile_raw(src)
        fn = comp.rtl.functions["f"]
        query = HLIQuery(comp.hli.entry("f"))
        run_cse(fn, use_hli=True, query=query, entry=comp.hli.entry("f"))
        res = execute(comp.rtl, "f", collect_trace=False)
        assert res.ret == 0 * 100 + 1  # y must observe the bump
