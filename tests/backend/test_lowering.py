"""Lowering tests: GCC-rule conformance and the item-order contract."""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.lowering import lower_program
from repro.backend.rtl import Opcode
from repro.frontend import parse_and_check
from repro.machine.executor import execute
from repro.workloads.suite import BENCHMARKS


def lower(src: str):
    prog, table = parse_and_check(src)
    return lower_program(prog, table)


def fn_insns(src: str, name: str = "f"):
    return lower(src).functions[name].insns


class TestRegisterPromotion:
    def test_local_scalars_stay_in_registers(self):
        insns = fn_insns("void f() { int x, y; x = 1; y = x + 2; }")
        assert not any(i.mem is not None for i in insns)

    def test_global_scalar_goes_through_memory(self):
        insns = fn_insns("int g;\nvoid f() { g = g + 1; }")
        loads = [i for i in insns if i.op is Opcode.LOAD]
        stores = [i for i in insns if i.op is Opcode.STORE]
        assert len(loads) == 1 and len(stores) == 1
        assert loads[0].mem.known_symbol == "g"

    def test_address_taken_local_in_memory(self):
        insns = fn_insns("void f() { int x; int *p; p = &x; x = 5; }")
        stores = [i for i in insns if i.op is Opcode.STORE]
        assert stores, "address-taken local must be stored to memory"

    def test_array_element_loses_known_symbol(self):
        insns = fn_insns("int a[8];\nvoid f() { int i; i = 0; a[i] = 1; }")
        store = next(i for i in insns if i.op is Opcode.STORE)
        assert store.mem.known_symbol is None
        assert store.mem.base_symbol == "a"

    def test_deref_loses_everything(self):
        insns = fn_insns("int g;\nvoid f() { int *p; p = &g; *p = 1; }")
        store = next(i for i in insns if i.op is Opcode.STORE)
        assert store.mem.known_symbol is None
        assert store.mem.base_symbol is None


class TestControlFlow:
    def test_for_loop_layout(self):
        insns = fn_insns("void f() { int i, s; s = 0; for (i = 0; i < 4; i++) s += i; }")
        ops = [i.op for i in insns]
        assert Opcode.BEQZ in ops and Opcode.J in ops
        # exactly one backward jump per loop
        assert sum(1 for o in ops if o is Opcode.J) == 1

    def test_if_else_branches(self):
        insns = fn_insns("int f(int c) { if (c) return 1; else return 2; }")
        ops = [i.op for i in insns]
        assert Opcode.BEQZ in ops

    def test_loops_recorded(self):
        prog = lower("void f() { int i; for (i = 0; i < 4; i++) { } while (i) i--; }")
        assert len(prog.functions["f"].loops) == 2

    def test_line_annotations_present(self):
        insns = fn_insns("int g;\nvoid f() {\n    g = 1;\n}")
        store = next(i for i in insns if i.op is Opcode.STORE)
        assert store.line == 3


class TestCallLowering:
    def test_first_four_args_in_registers(self):
        src = "int g4(int a, int b, int c, int d) { return a; }\nvoid f() { g4(1,2,3,4); }"
        insns = fn_insns(src)
        call = next(i for i in insns if i.op is Opcode.CALL)
        assert len(call.srcs) == 4
        assert not any(i.op is Opcode.STORE for i in insns)

    def test_fifth_arg_on_stack(self):
        src = (
            "int g5(int a, int b, int c, int d, int e) { return e; }\n"
            "void f() { g5(1,2,3,4,5); }"
        )
        insns = fn_insns(src)
        stores = [i for i in insns if i.op is Opcode.STORE]
        assert len(stores) == 1
        assert stores[0].mem.known_symbol == "__argslot4"
        # callee loads it back
        callee = lower(src).functions["g5"].insns
        loads = [i for i in callee if i.op is Opcode.LOAD]
        assert loads and loads[0].mem.known_symbol == "__argslot4"

    def test_call_result_register(self):
        src = "int g() { return 7; }\nint f() { return g(); }"
        insns = fn_insns(src)
        call = next(i for i in insns if i.op is Opcode.CALL)
        assert call.dst is not None


class TestItemOrderContract:
    """The load/store emission order must match ITEMGEN exactly: the
    lowering itself asserts this; these tests prove it holds on every
    workload program plus tricky constructs."""

    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_contract_on_benchmarks(self, bench):
        compile_source(bench.source, bench.name, CompileOptions(schedule=False))

    @pytest.mark.parametrize(
        "body",
        [
            "a[0] = a[1] + a[2] * a[3];",
            "a[a[0]] = 1;",
            "a[0] += a[1];",
            "a[0] = c ? a[1] : a[2];",
            "a[0] = (a[1] && a[2]) || a[3];",
            "a[0]++; --a[1];",
            "g = f2(a[0], a[1]) + a[2];",
        ],
        ids=["nested", "indirect", "compound", "ternary", "shortcircuit", "incdec", "call"],
    )
    def test_contract_on_constructs(self, body):
        src = (
            "int a[8];\nint g;\n"
            "int f2(int x, int y) { return x + y; }\n"
            f"void f(int c) {{ {body} }}"
        )
        compile_source(src, "t.c", CompileOptions(schedule=False))


class TestMappingCoverage:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_every_memref_maps(self, bench):
        comp = compile_source(bench.source, bench.name, CompileOptions(schedule=False))
        for name, stats in comp.map_stats.items():
            assert stats.unmapped == 0, (name, stats.mismatched_lines)
            assert stats.mapped == stats.total
