"""Workload suite and generator tests."""

import pytest

from repro import CompileOptions, compile_source
from repro.machine.executor import execute
from repro.workloads.generators import (
    ReductionParams,
    StencilParams,
    random_affine_loop,
    reduction_program,
    stencil_program,
)
from repro.workloads.suite import (
    BENCHMARKS,
    by_name,
    float_benchmarks,
    integer_benchmarks,
)


class TestSuiteMetadata:
    def test_fourteen_benchmarks(self):
        assert len(BENCHMARKS) == 14

    def test_matches_paper_rows(self):
        names = {b.name for b in BENCHMARKS}
        assert "wc" in names
        assert "101.tomcatv" in names
        assert "141.apsi" in names

    def test_int_fp_split(self):
        assert len(integer_benchmarks()) == 4
        assert len(float_benchmarks()) == 10

    def test_by_name(self):
        assert by_name("102.swim").is_float
        with pytest.raises(KeyError):
            by_name("nonexistent")

    def test_paper_rows_complete(self):
        for b in BENCHMARKS:
            assert b.paper is not None
            assert b.paper.speedup_r4600 >= 1.0
            assert b.paper.reduction_pct > 0

    def test_wc_has_input(self):
        assert by_name("wc").input_text


class TestGenerators:
    def test_stencil_compiles_and_runs(self):
        src = stencil_program(StencilParams(arrays=3, size=32, iters=2))
        comp = compile_source(src, "st.c", CompileOptions())
        res = execute(comp.rtl, collect_trace=False)
        assert res.ret in (0, 1)

    def test_stencil_scales_arrays(self):
        small = stencil_program(StencilParams(arrays=2))
        large = stencil_program(StencilParams(arrays=6))
        assert large.count("double a") > small.count("double a")

    def test_reduction_result(self):
        p = ReductionParams(arrays=2, size=16, stride=1)
        comp = compile_source(reduction_program(p), "r.c", CompileOptions())
        res = execute(comp.rtl, collect_trace=False)
        expected = sum(i * 3 for i in range(16)) + sum(i * 4 for i in range(16))
        assert res.ret == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_random_affine_loop_oracle(self, seed):
        src, expected = random_affine_loop(seed)
        comp = compile_source(src, "ra.c", CompileOptions())
        res = execute(comp.rtl, collect_trace=False)
        assert res.ret == expected[16]

    def test_random_affine_deterministic(self):
        assert random_affine_loop(5)[0] == random_affine_loop(5)[0]
