"""Parallel fan-out: compile_many ordering/equivalence, worker policy."""

from __future__ import annotations

import pytest

from repro import CompileOptions
from repro.backend.ddg import DDGMode
from repro.driver.session import (
    CompilationSession,
    parallel_map,
    resolve_workers,
)
from repro.driver.timing import time_benchmark
from repro.workloads.suite import BENCHMARKS


def _square(x: int) -> int:
    return x * x


def _jobs(n: int = 4) -> list[tuple]:
    return [
        (b.source, b.name, CompileOptions(mode=DDGMode.COMBINED))
        for b in BENCHMARKS[:n]
    ]


class TestCompileMany:
    def test_parallel_results_match_serial_in_order(self, tmp_path):
        serial = CompilationSession().compile_many(_jobs(), max_workers=1)
        par = CompilationSession(cache_dir=tmp_path / "c").compile_many(
            _jobs(), max_workers=2
        )
        assert [c.filename for c in par] == [c.filename for c in serial]
        for a, b in zip(par, serial):
            assert {n: [i.op for i in f.insns] for n, f in a.rtl.functions.items()} \
                == {n: [i.op for i in f.insns] for n, f in b.rtl.functions.items()}
            assert {n: vars(s) for n, s in a.dep_stats.items()} \
                == {n: vars(s) for n, s in b.dep_stats.items()}

    def test_fanout_shares_the_disk_cache(self, tmp_path):
        sess = CompilationSession(cache_dir=tmp_path / "c")
        cold = sess.compile_many(_jobs(), max_workers=2)
        warm = sess.compile_many(_jobs(), max_workers=2)
        assert all(c.cache_state == "cold" for c in cold)
        assert all(c.cache_state == "disk" for c in warm)
        assert sess.stats.hits_disk == len(warm)

    def test_bad_job_shape_rejected(self):
        with pytest.raises(ValueError, match="source, filename"):
            CompilationSession().compile_many([("only-source",)])

    def test_function_granularity_matches_serial(self, tmp_path):
        serial = CompilationSession().compile_many(_jobs(2), max_workers=1)
        sess = CompilationSession(cache_dir=tmp_path / "c")
        par = sess.compile_many(_jobs(2), max_workers=2, granularity="function")
        for a, b in zip(par, serial):
            assert {n: [i.op for i in f.insns] for n, f in a.rtl.functions.items()} \
                == {n: [i.op for i in f.insns] for n, f in b.rtl.functions.items()}
            assert {n: vars(s) for n, s in a.dep_stats.items()} \
                == {n: vars(s) for n, s in b.dep_stats.items()}
        # the fan-out populated the per-function back-end tier: a warm
        # serial recompile splices every function
        warm = sess.compile_many(_jobs(2), max_workers=1)
        assert all(
            v.startswith("be:") or v.startswith("fe:")
            for c in warm
            for v in c.fn_cache_states.values()
        )


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(10))
        assert parallel_map(_square, items, max_workers=3) == [
            x * x for x in items
        ]

    def test_serial_path_runs_inline(self):
        assert parallel_map(_square, [2, 3], max_workers=1) == [4, 9]


class TestWorkerPolicy:
    def test_explicit_count_capped_by_items(self):
        assert resolve_workers(8, 3) == 3

    def test_zero_means_per_core(self):
        import os

        assert resolve_workers(0, 10_000) == (os.cpu_count() or 1)

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert resolve_workers(None, 8) == 2
        monkeypatch.delenv("REPRO_JOBS")
        assert resolve_workers(None, 8) >= 1

    def test_at_least_one(self):
        assert resolve_workers(1, 0) == 1


class TestTimingSharesFrontend:
    def test_four_compiles_one_parse(self):
        sess = CompilationSession()
        spec = BENCHMARKS[0]
        t = time_benchmark(spec, sess)
        # 2 machines x 2 modes = 4 compiles, but only one cold front end
        assert sess.stats.misses == 1
        assert sess.stats.hits_memory == 3
        assert t.results_match
