"""Pass-manager pipeline: ordering, validation, declared invalidation."""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.backend.passes import OptStats
from repro.backend.pm import Pass, PassManager, PipelineError, split_frontend
from repro.driver.passes import KNOWN_PASSES, default_pipeline
from tests.conftest import SIMPLE_MAIN


class TestPipelineOrdering:
    def test_default_pipeline_runs_in_declared_order(self):
        comp = compile_source(
            SIMPLE_MAIN,
            "simple.c",
            CompileOptions(mode=DDGMode.COMBINED, cse=True, licm=True, unroll=2),
        )
        assert comp.pipeline_stats is not None
        assert comp.pipeline_stats.passes_run == [
            "parse", "hli-build", "lower", "map",
            "unroll", "cse", "licm", "schedule",
        ]

    def test_explicit_pipeline_is_data(self):
        opts = CompileOptions(
            pipeline=("parse", "hli-build", "lower", "map", "schedule")
        )
        comp = compile_source(SIMPLE_MAIN, "simple.c", opts)
        assert comp.pipeline_stats.passes_run == list(opts.pipeline)
        assert comp.dep_stats  # schedule ran

    def test_pipeline_without_schedule_skips_dep_stats(self):
        opts = CompileOptions(pipeline=("parse", "hli-build", "lower", "map"))
        comp = compile_source(SIMPLE_MAIN, "simple.c", opts)
        assert comp.dep_stats == {}
        assert comp.rtl is not None

    def test_impossible_order_rejected_before_running(self):
        # map requires rtl, which only lower provides
        opts = CompileOptions(pipeline=("parse", "hli-build", "map", "lower"))
        with pytest.raises(PipelineError, match="requires artifact 'rtl'"):
            compile_source(SIMPLE_MAIN, "simple.c", opts)

    def test_unknown_pass_name_is_a_clear_error(self):
        opts = CompileOptions(pipeline=("parse", "frobnicate"))
        with pytest.raises(PipelineError, match="unknown pass 'frobnicate'"):
            compile_source(SIMPLE_MAIN, "simple.c", opts)

    def test_duplicate_pass_rejected(self):
        opts = CompileOptions(pipeline=("parse", "parse"))
        with pytest.raises(PipelineError, match="duplicate pass"):
            compile_source(SIMPLE_MAIN, "simple.c", opts)

    def test_default_pipeline_uses_only_known_passes(self):
        opts = CompileOptions(cse=True, licm=True, unroll=2, lint=True)
        assert set(default_pipeline(opts)) <= set(KNOWN_PASSES)


class TestDeclaredInvalidation:
    """The old manual HLIQuery rebuild, now a declared effect."""

    def test_no_opt_passes_no_rebuilds(self):
        comp = compile_source(
            SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.COMBINED)
        )
        assert comp.pipeline_stats.rebuilds == {}

    def test_single_mutating_pass_rebuilds_exactly_once(self):
        comp = compile_source(
            SIMPLE_MAIN,
            "simple.c",
            CompileOptions(mode=DDGMode.COMBINED, unroll=2),
        )
        # unroll invalidates queries; schedule is the next consumer
        assert comp.pipeline_stats.rebuilds == {"queries": 1}

    def test_each_consumer_after_invalidation_rebuilds_once(self):
        comp = compile_source(
            SIMPLE_MAIN,
            "simple.c",
            CompileOptions(mode=DDGMode.COMBINED, cse=True, licm=True),
        )
        # cse invalidates -> licm rebuilds; licm invalidates -> schedule
        # rebuilds: exactly two, never one per function or per use
        assert comp.pipeline_stats.rebuilds == {"queries": 2}

    def test_gcc_mode_cse_still_invalidates_for_maintenance(self):
        # cse deletes insns and maintains the tables in every mode, so
        # the scheduler must get fresh queries even in GCC mode
        comp = compile_source(
            SIMPLE_MAIN,
            "simple.c",
            CompileOptions(mode=DDGMode.GCC, cse=True),
        )
        assert comp.pipeline_stats.rebuilds == {"queries": 1}
        assert comp.dep_stats


class TestGccModeUnroll:
    """Regression: GCC-mode run_unroll must get query=None like cse/licm.

    Handing it a live query made GCC-mode compiles consult (and
    invalidate) HLI that the mode promises not to use.
    """

    def test_gcc_unroll_is_a_noop_and_consults_no_hli(self):
        comp = compile_source(
            SIMPLE_MAIN,
            "simple.c",
            CompileOptions(mode=DDGMode.GCC, unroll=4),
        )
        assert comp.opt_stats is not None
        assert comp.opt_stats.unroll.loops_unrolled == 0
        # no query consulted -> nothing invalidated -> no rebuild
        assert comp.pipeline_stats.rebuilds == {}

    def test_gcc_unroll_matches_gcc_baseline_code(self):
        base = compile_source(SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.GCC))
        unrolled = compile_source(
            SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.GCC, unroll=4)
        )
        for name, fn in base.rtl.functions.items():
            assert [i.op for i in fn.insns] == [
                i.op for i in unrolled.rtl.functions[name].insns
            ]

    def test_combined_unroll_does_unroll(self):
        comp = compile_source(
            SIMPLE_MAIN,
            "simple.c",
            CompileOptions(mode=DDGMode.COMBINED, unroll=2),
        )
        assert comp.opt_stats.unroll.loops_unrolled > 0


class TestOptStatsField:
    def test_opt_stats_is_a_declared_optional_field(self):
        from dataclasses import fields

        from repro.driver.compile import Compilation

        assert "opt_stats" in {f.name for f in fields(Compilation)}

    def test_none_without_opt_passes(self):
        comp = compile_source(SIMPLE_MAIN, "simple.c", CompileOptions())
        assert comp.opt_stats is None

    def test_populated_with_opt_passes(self):
        comp = compile_source(
            SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.COMBINED, cse=True)
        )
        assert isinstance(comp.opt_stats, OptStats)


class TestPassManagerUnit:
    """The generic manager, exercised without the compiler pipeline."""

    def test_rebuilder_restores_invalidated_artifact(self):
        log = []
        passes = [
            Pass("a", lambda ctx: log.append("a"), provides=("x",)),
            Pass("b", lambda ctx: log.append("b"), requires=("x",),
                 invalidates=("x",)),
            Pass("c", lambda ctx: log.append("c"), requires=("x",)),
        ]
        pm = PassManager(passes, rebuilders={"x": lambda ctx: log.append("rebuild")})
        stats = pm.run(object())
        assert log == ["a", "b", "rebuild", "c"]
        assert stats.rebuilds == {"x": 1}

    def test_invalidation_without_rebuilder_is_static_error(self):
        passes = [
            Pass("a", lambda ctx: None, provides=("x",)),
            Pass("b", lambda ctx: None, requires=("x",), invalidates=("x",)),
            Pass("c", lambda ctx: None, requires=("x",)),
        ]
        with pytest.raises(PipelineError, match="invalidated by an earlier pass"):
            PassManager(passes).validate()

    def test_split_frontend_requires_contiguous_prefix(self):
        ok = [Pass("f", lambda c: None, frontend=True), Pass("b", lambda c: None)]
        prefix, suffix = split_frontend(ok)
        assert [p.name for p in prefix] == ["f"]
        assert [p.name for p in suffix] == ["b"]
        with pytest.raises(PipelineError, match="contiguous prefix"):
            split_frontend(list(reversed(ok)))
