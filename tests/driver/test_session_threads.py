"""Concurrent use of one CompilationSession from many threads.

The repro-serve daemon runs every pipeline op on a worker pool that
shares a single hot session, so the session's cache tiers and stats
counters must survive concurrent mutation.  These tests hammer one
session from many threads and assert the invariants the daemon relies
on: stats add up exactly, results are alpha-equivalent to a serial
compile, and nothing raises :class:`CacheCorruption`.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.difftest.incremental import canonical_rtl
from repro.driver.session import CompilationSession
from tests.conftest import FIG2_SOURCE, SIMPLE_MAIN

THIRD_SOURCE = """\
int acc;
int step(int x) { acc = acc + x; return acc; }
int main() {
  int i;
  for (i = 0; i < 5; i = i + 1) step(i);
  return acc;
}
"""

SOURCES = [
    (FIG2_SOURCE, "fig2.c"),
    (SIMPLE_MAIN, "simple.c"),
    (THIRD_SOURCE, "third.c"),
]


def _hammer(sess, rounds, threads):
    """Compile every source ``rounds`` times from ``threads`` threads."""
    jobs = [(src, name) for _ in range(rounds) for (src, name) in SOURCES]
    errors = []
    digests = {name: set() for _, name in SOURCES}
    barrier = threading.Barrier(threads)
    it = iter(jobs)
    lock = threading.Lock()

    def worker():
        barrier.wait()  # maximize overlap on the cold path
        while True:
            with lock:
                job = next(it, None)
            if job is None:
                return
            src, name = job
            try:
                comp = sess.compile(src, name)
                canon = tuple(
                    (fn, tuple(lines))
                    for fn, lines in sorted(canonical_rtl(comp.rtl).items())
                )
                with lock:
                    digests[name].add(canon)
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                with lock:
                    errors.append(exc)

    with ThreadPoolExecutor(max_workers=threads) as pool:
        for _ in range(threads):
            pool.submit(worker)
    return errors, digests, len(jobs)


class TestConcurrentSession:
    def test_stats_add_up_and_results_agree(self, tmp_path):
        sess = CompilationSession(cache_dir=tmp_path / "cache")
        errors, digests, total = _hammer(sess, rounds=8, threads=8)

        assert not errors, errors[:3]
        s = sess.stats
        # Every compile is exactly one hit or one miss — no lost updates.
        assert s.hits_memory + s.hits_disk + s.misses == total
        # The cold path may be computed by more than one thread (the lock
        # is not held across pipeline work), but at least once per source.
        assert s.misses >= len(SOURCES)
        assert s.hits_memory + s.hits_disk > 0

        # Alpha-equivalent RTL regardless of which thread compiled it:
        # concurrent register allocation must not leak across functions.
        for name, seen in digests.items():
            assert len(seen) == 1, f"{name}: {len(seen)} distinct RTL shapes"

    def test_serial_and_threaded_rtl_match(self, tmp_path):
        serial = CompilationSession(cache_dir=tmp_path / "serial")
        want = {
            name: sorted(canonical_rtl(serial.compile(src, name).rtl).items())
            for src, name in SOURCES
        }

        sess = CompilationSession(cache_dir=tmp_path / "threaded")
        errors, digests, _ = _hammer(sess, rounds=4, threads=6)
        assert not errors, errors[:3]
        for src, name in SOURCES:
            (canon,) = digests[name]
            assert [(fn, list(lines)) for fn, lines in canon] == want[name]

    def test_memory_eviction_under_contention(self, tmp_path):
        # A one-entry memory LRU forces constant eviction + disk refills
        # while threads race; the OrderedDict must never corrupt.
        sess = CompilationSession(
            cache_dir=tmp_path / "cache", max_memory_entries=1
        )
        errors, digests, total = _hammer(sess, rounds=6, threads=8)
        assert not errors, errors[:3]
        s = sess.stats
        assert s.hits_memory + s.hits_disk + s.misses == total
        assert s.corrupt == 0
        for name, seen in digests.items():
            assert len(seen) == 1

    def test_disk_budget_enforced_under_contention(self, tmp_path):
        # Tight disk budget: concurrent stores race with LRU eviction.
        sess = CompilationSession(
            cache_dir=tmp_path / "cache", max_disk_bytes=16 * 1024
        )
        errors, _, total = _hammer(sess, rounds=4, threads=6)
        assert not errors, errors[:3]
        s = sess.stats
        assert s.hits_memory + s.hits_disk + s.misses == total
        assert s.corrupt == 0
