"""Partitioned parallel back end: parity with ``jobs=1`` and resilience.

The partitioner is a pure scheduling decision, so every program in the
``gen-multiunit-v1`` registry set must compile to the *same* output
under ``jobs=N`` + partitioning as under the serial path: per-unit RTL
alpha-equivalent, ``DepStats`` equal, whole-program lint verdicts
(HLI009-HLI012) equal, and the canonical encoding of the merged image
byte-identical.  (Raw RTL bytes are process-history-dependent — reg/uid
ids come from global atomic counters — so "identical bytes" is asserted
on the canonical alpha-renamed form, the same encoding the serve
daemon's ``program_digest`` hashes.)

Worker death must never lose work: ``REPRO_TEST_KILL_WORKER`` makes
every pool worker exit immediately, and the batch must still complete
through the in-process fallback.
"""

import json

import pytest

from repro.bench.registry import materialize
from repro.difftest.incremental import canonical_rtl
from repro.driver.compile import CompileOptions
from repro.driver.session import CompilationSession, CompileJob
from repro.driver.wpa import compile_whole_program

PROGRAMS = {p.name: p for p in materialize("gen-multiunit-v1")}
#: every 8-16-unit program plus a spread of the 3-unit ones — enough to
#: exercise multi-partition plans without recompiling the whole set
PARITY_NAMES = sorted(
    name for name, p in PROGRAMS.items()
    if p.profile == "multiunit-large" or name.endswith(("-000", "-005", "-011"))
)


def _image_bytes(result) -> bytes:
    return json.dumps(canonical_rtl(result.image), sort_keys=True).encode()


def _lint_rules(result) -> list[str]:
    return sorted({d.rule.rule_id for d in result.lint_report().diagnostics})


class TestPartitionedParity:
    @pytest.mark.parametrize("name", PARITY_NAMES)
    def test_partitioned_matches_serial(self, name):
        sources = list(PROGRAMS[name].units)
        opts = CompileOptions()
        serial = compile_whole_program(
            sources, opts, session=CompilationSession()
        )
        part = compile_whole_program(
            sources, opts, session=CompilationSession(),
            jobs=2, partition="balanced",
        )

        assert part.partition_plan is not None
        assert part.partition_plan.n_partitions >= 2
        assert list(serial.units) == list(part.units)
        for fname in serial.units:
            assert (
                canonical_rtl(serial.units[fname].rtl)
                == canonical_rtl(part.units[fname].rtl)
            ), f"{name}: RTL diverges in {fname}"
        assert serial.total_dep_stats() == part.total_dep_stats()
        assert _lint_rules(serial) == _lint_rules(part)
        assert _image_bytes(serial) == _image_bytes(part)

    def test_1to1_mode_also_at_parity(self):
        prog = PROGRAMS[PARITY_NAMES[0]]
        sources = list(prog.units)
        opts = CompileOptions()
        serial = compile_whole_program(sources, opts, session=CompilationSession())
        part = compile_whole_program(
            sources, opts, session=CompilationSession(), jobs=2, partition="1to1"
        )
        assert part.partition_plan.n_partitions == len(sources)
        assert _image_bytes(serial) == _image_bytes(part)
        assert serial.total_dep_stats() == part.total_dep_stats()

    def test_warm_partitioned_run_hits_shared_cache(self, tmp_path):
        prog = PROGRAMS[PARITY_NAMES[0]]
        sources = list(prog.units)
        opts = CompileOptions()
        cold_sess = CompilationSession(cache_dir=tmp_path / "wpa")
        compile_whole_program(
            sources, opts, session=cold_sess, jobs=2, partition="balanced"
        )
        # fresh session, same disk tier: every unit must come back as a
        # parent-side hit — partition boundaries must not fragment keys
        warm_sess = CompilationSession(cache_dir=tmp_path / "wpa")
        compile_whole_program(
            sources, opts, session=warm_sess, jobs=2, partition="balanced"
        )
        assert warm_sess.stats.misses == 0
        assert warm_sess.stats.hits_disk == len(sources)


class TestWorkerDeath:
    def test_partition_batch_completes_via_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KILL_WORKER", "1")
        sess = CompilationSession()
        partitions = [
            [("int a() { return 1; }", "a.c"), ("int b() { return 2; }", "b.c")],
            [("int c() { return 3; }", "c.c")],
        ]
        results = sess.compile_partitions(partitions, max_workers=2)
        assert [len(part) for part in results] == [2, 1]
        for part in results:
            for comp in part:
                assert comp is not None and comp.rtl.functions
        # every job was compiled in-parent after the pool broke
        assert sess.stats.misses == 3

    def test_healthy_pool_not_affected(self):
        sess = CompilationSession()
        partitions = [
            [("int a() { return 1; }", "a.c")],
            [("int b() { return 2; }", "b.c")],
        ]
        results = sess.compile_partitions(partitions, max_workers=2)
        names = [list(c.rtl.functions) for part in results for c in part]
        assert names == [["a"], ["b"]]


class TestCompileJobNormalization:
    def test_tuples_and_dataclass_jobs_equivalent(self):
        src = "int main() { return 5; }"
        a = CompilationSession().compile_many([(src, "m.c")], max_workers=1)
        b = CompilationSession().compile_many(
            [CompileJob(source=src, filename="m.c")], max_workers=1
        )
        assert canonical_rtl(a[0].rtl) == canonical_rtl(b[0].rtl)

    def test_job_carries_salt_and_effects(self):
        sess = CompilationSession()
        src = "int main() { return 5; }"
        plain = sess.compile_many([CompileJob(source=src, filename="m.c")],
                                  max_workers=1)[0]
        salted = sess.compile_many(
            [CompileJob(source=src, filename="m.c", extra_salt="wpa:x")],
            max_workers=1,
        )[0]
        # distinct salt -> distinct manifest key -> second compile is cold
        assert plain.cache_state is None or plain.cache_state == "cold"
        assert salted.cache_state is None or salted.cache_state == "cold"
        assert sess.stats.misses == 2

    def test_bad_job_shapes_rejected(self):
        sess = CompilationSession()
        with pytest.raises(ValueError):
            sess.compile_many([("only-source",)], max_workers=1)
        with pytest.raises(ValueError):
            sess.compile_many([42], max_workers=1)
