"""CompilationSession: cache tiers, corruption fallback, warm-path proof."""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source, obs
from repro.backend.ddg import DDGMode
from repro.difftest.diff import build_matrix
from repro.driver.session import (
    CacheCorruption,
    CompilationSession,
    _decode_manifest,
    _encode_manifest,
)
from repro.machine.executor import execute
from repro.obs import trace
from tests.conftest import FIG2_SOURCE, SIMPLE_MAIN

OTHER_SOURCE = "int x;\nint main() { x = 41; return x + 1; }\n"


@pytest.fixture()
def disk_session(tmp_path):
    return CompilationSession(cache_dir=tmp_path / "cache")


def _opcodes(comp) -> dict:
    return {n: [i.op for i in f.insns] for n, f in comp.rtl.functions.items()}


def _dep_stats(comp) -> dict:
    return {n: vars(s) for n, s in comp.dep_stats.items()}


class TestTiers:
    def test_cold_then_memory_hit(self):
        sess = CompilationSession()
        c1 = sess.compile(SIMPLE_MAIN, "simple.c")
        c2 = sess.compile(SIMPLE_MAIN, "simple.c")
        assert (c1.cache_state, c2.cache_state) == ("cold", "memory")
        assert sess.stats.misses == 1
        assert sess.stats.hits_memory == 1
        assert sess.stats.stores == 1
        assert c2.pipeline_stats.cached_prefix == ("parse", "hli-build", "lower")

    def test_disk_hit_across_sessions(self, tmp_path):
        d = tmp_path / "cache"
        CompilationSession(cache_dir=d).compile(SIMPLE_MAIN, "simple.c")
        sess = CompilationSession(cache_dir=d)
        comp = sess.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "disk"
        assert sess.stats.hits_disk == 1
        assert sess.stats.misses == 0

    def test_memory_tier_evicts_lru(self, tmp_path):
        sess = CompilationSession(cache_dir=tmp_path / "c", max_memory_entries=1)
        sess.compile(SIMPLE_MAIN, "simple.c")
        sess.compile(OTHER_SOURCE, "other.c")  # evicts simple.c's entries
        assert sess.stats.evictions >= 1
        comp = sess.compile(SIMPLE_MAIN, "simple.c")  # falls through to disk
        assert comp.cache_state == "disk"

    def test_different_sources_do_not_collide(self):
        sess = CompilationSession()
        c1 = sess.compile(SIMPLE_MAIN, "a.c")
        c2 = sess.compile(OTHER_SOURCE, "a.c")
        assert sess.stats.misses == 2
        assert _opcodes(c1) != _opcodes(c2)

    def test_backend_options_share_the_frontend_entry(self):
        # The key excludes back-end knobs: gcc and combined compiles of
        # the same source hit the same cached front end (timing.py's
        # double-compile relies on this).
        sess = CompilationSession()
        sess.compile(SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.GCC))
        comp = sess.compile(
            SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.COMBINED, cse=True)
        )
        assert comp.cache_state == "memory"
        assert sess.stats.misses == 1


class TestWarmPathSkipsFrontend:
    def test_span_counts_prove_frontend_skipped(self):
        sess = CompilationSession()
        opts = CompileOptions(mode=DDGMode.COMBINED)
        obs.reset()
        with obs.enabled_scope():
            sess.compile(FIG2_SOURCE, "fig2.c", opts)
            cold_names = [s.name for s in trace.iter_spans()]
            obs.reset()
            comp = sess.compile(FIG2_SOURCE, "fig2.c", opts)
            warm_names = [s.name for s in trace.iter_spans()]
        assert cold_names.count("frontend.parse_and_check") == 1
        assert "analysis.build_hli" in cold_names
        assert "backend.lowering" in cold_names
        # warm: parse, HLI construction, and lowering never run
        assert "frontend.parse_and_check" not in warm_names
        assert "analysis.build_hli" not in warm_names
        assert "backend.lowering" not in warm_names
        # ... and neither does the back end: every function's finished
        # artifacts come from the per-function back-end tier
        assert "backend.mapping" not in warm_names
        assert "backend.schedule" not in warm_names
        assert comp.cache_state == "memory"
        assert all(v == "be:memory" for v in comp.fn_cache_states.values())
        assert comp.pipeline_stats.function_runs["schedule"] == []

    def test_new_backend_knobs_rerun_the_backend(self):
        # A warm front end with unseen back-end options must still run
        # the back-end passes (the be key folds the knobs in).
        sess = CompilationSession()
        opts = CompileOptions(mode=DDGMode.COMBINED)
        obs.reset()
        with obs.enabled_scope():
            sess.compile(FIG2_SOURCE, "fig2.c", opts)
            obs.reset()
            comp = sess.compile(
                FIG2_SOURCE, "fig2.c", CompileOptions(mode=DDGMode.GCC)
            )
            names = [s.name for s in trace.iter_spans()]
        assert "frontend.parse_and_check" not in names
        assert "backend.schedule" in names
        assert comp.cache_state == "memory"
        assert all(v == "fe:memory" for v in comp.fn_cache_states.values())


class TestResultEquivalence:
    @pytest.mark.parametrize(
        "config", build_matrix("quick"), ids=lambda c: c.name
    )
    def test_warm_compile_identical_to_cold_across_matrix(self, config, tmp_path):
        opts = config.to_options()
        cold = compile_source(SIMPLE_MAIN, "simple.c", opts)
        sess = CompilationSession(cache_dir=tmp_path / "c")
        sess.compile(SIMPLE_MAIN, "simple.c", opts)
        warm = sess.compile(SIMPLE_MAIN, "simple.c", opts)
        assert warm.cache_state == "memory"
        assert _opcodes(warm) == _opcodes(cold)
        assert _dep_stats(warm) == _dep_stats(cold)
        if opts.lint:
            assert warm.lint_report is not None
            assert not warm.lint_report.diagnostics


class TestCorruption:
    def _entries(self, sess):
        # manifest + one fe blob + one be blob per function, sharded
        files = sorted(sess.cache_dir.rglob("*.hlic"))
        assert len(files) >= 3
        return files

    def test_bit_flip_degrades_to_cold_compile(self, disk_session):
        ref = disk_session.compile(SIMPLE_MAIN, "simple.c")
        for path in self._entries(disk_session):
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            path.write_bytes(bytes(blob))
        fresh = CompilationSession(cache_dir=disk_session.cache_dir)
        comp = fresh.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "cold"
        assert fresh.stats.corrupt >= 1
        assert fresh.stats.misses == 1
        assert _opcodes(comp) == _opcodes(ref)
        assert _dep_stats(comp) == _dep_stats(ref)

    def test_corrupt_fn_entry_recompiles_just_that_function(self, disk_session):
        ref = disk_session.compile(SIMPLE_MAIN, "simple.c")
        # corrupt only the manifest-keyed blob? we can't tell blobs apart
        # by name, so flip one file at a time and demand every outcome is
        # a correct compile (cold, incremental, or warm — never wrong)
        for path in self._entries(disk_session):
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
            fresh = CompilationSession(cache_dir=disk_session.cache_dir)
            comp = fresh.compile(SIMPLE_MAIN, "simple.c")
            assert _opcodes(comp) == _opcodes(ref)
            assert _dep_stats(comp) == _dep_stats(ref)

    def test_corrupt_entry_is_evicted_and_rewritten(self, disk_session):
        disk_session.compile(SIMPLE_MAIN, "simple.c")
        for path in self._entries(disk_session):
            path.write_bytes(b"garbage")
        fresh = CompilationSession(cache_dir=disk_session.cache_dir)
        fresh.compile(SIMPLE_MAIN, "simple.c")
        # the cold recompile re-stored valid entries over the bad ones
        comp = CompilationSession(cache_dir=disk_session.cache_dir).compile(
            SIMPLE_MAIN, "simple.c"
        )
        assert comp.cache_state == "disk"

    def _fake_keys(self, comp) -> dict:
        import hashlib

        return {
            n: hashlib.sha256(n.encode()).hexdigest() for n in comp.rtl.functions
        }

    def test_truncated_blob_raises_corruption(self):
        comp = compile_source(SIMPLE_MAIN, "simple.c")
        blob = _encode_manifest(comp, self._fake_keys(comp))
        for cut in (0, 3, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CacheCorruption):
                _decode_manifest(blob[:cut])

    def test_blob_round_trip(self):
        from repro.analysis.builder import FrontEndInfo
        from repro import binfmt

        comp = compile_source(SIMPLE_MAIN, "simple.c")
        fe_keys = self._fake_keys(comp)
        man = _decode_manifest(_encode_manifest(comp, fe_keys))
        assert man.fe_keys == fe_keys
        assert man.source_filename == comp.hli.source_filename
        assert man.globals_layout == comp.rtl.globals_layout
        assert man.init_data == comp.rtl.init_data
        for name, fn in comp.rtl.functions.items():
            assert man.frames[name] == fn.frame
            assert man.frame_sizes[name] == fn.frame_size
        # the front-end chunk rides along encoded; it must still decode
        frontend = binfmt.decode(man.frontend_blob)
        assert isinstance(frontend, FrontEndInfo)
        assert set(frontend.units) == set(comp.rtl.functions)

    def test_codec_fingerprint_mismatch_is_corruption(self):
        comp = compile_source(SIMPLE_MAIN, "simple.c")
        blob = bytearray(_encode_manifest(comp, self._fake_keys(comp)))
        # bytes 6:14 hold the binfmt registry fingerprint — outside the
        # payload checksum, so skew is caught before any decode
        blob[6:14] = bytes(8)
        with pytest.raises(CacheCorruption, match="fingerprint"):
            _decode_manifest(bytes(blob))


class TestZeroPickleWarmPath:
    """The warm path must never unpickle — blobs and wire are binfmt-only."""

    def _poison(self, monkeypatch):
        import pickle

        def boom(*a, **k):  # pragma: no cover - raising is the assertion
            raise AssertionError("pickle.loads called on the warm path")

        monkeypatch.setattr(pickle, "loads", boom)
        monkeypatch.setattr(pickle, "load", boom)

    def test_warm_disk_restore_never_unpickles(self, tmp_path, monkeypatch):
        d = tmp_path / "cache"
        CompilationSession(cache_dir=d).compile(SIMPLE_MAIN, "simple.c")
        self._poison(monkeypatch)
        sess = CompilationSession(cache_dir=d)
        comp = sess.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "disk"
        assert all(v == "be:disk" for v in comp.fn_cache_states.values())
        assert execute(comp.rtl, collect_trace=False).ret is not None

    def test_full_warm_hit_never_decodes_the_frontend(self, tmp_path):
        d = tmp_path / "cache"
        CompilationSession(cache_dir=d).compile(SIMPLE_MAIN, "simple.c")
        sess = CompilationSession(cache_dir=d)
        comp = sess.compile(SIMPLE_MAIN, "simple.c")
        # every function came from the finished back-end tier: the fe
        # blobs were never read, the manifest's frontend chunk never
        # decoded — a warm be hit touches exactly one fe-side artifact
        # (the manifest itself)
        assert sess.stats.fe_decodes == 0
        assert sess.stats.frontend_decodes == 0
        assert sess.stats.be_decodes == len(comp.rtl.functions)
        # first attribute access materializes the lazy frontend
        assert comp.frontend.units
        assert sess.stats.frontend_decodes == 1

    def test_lazy_frontend_survives_warm_execution(self, tmp_path, monkeypatch):
        d = tmp_path / "cache"
        cold = CompilationSession(cache_dir=d).compile(SIMPLE_MAIN, "simple.c")
        self._poison(monkeypatch)
        sess = CompilationSession(cache_dir=d)
        warm = sess.compile(SIMPLE_MAIN, "simple.c")
        assert _opcodes(warm) == _opcodes(cold)
        assert warm.rtl.globals_layout == cold.rtl.globals_layout
        # materializing the frontend is also pickle-free
        assert sorted(warm.frontend.units) == sorted(cold.frontend.units)


class TestShardedDisk:
    def test_entries_are_sharded_git_object_style(self, disk_session):
        disk_session.compile(SIMPLE_MAIN, "simple.c")
        files = list(disk_session.cache_dir.rglob("*.hlic"))
        assert files
        for f in files:
            shard = f.parent.name
            assert f.parent.parent == disk_session.cache_dir
            assert len(shard) == 2
            # shard dir + stem reassemble the full 64-hex key
            assert len(shard + f.stem) == 64

    def test_flat_legacy_entry_is_migrated_on_first_touch(self, tmp_path):
        d = tmp_path / "cache"
        sess = CompilationSession(cache_dir=d)
        sess.compile(SIMPLE_MAIN, "simple.c")
        # flatten every sharded entry back into the legacy layout
        for f in list(d.rglob("*.hlic")):
            flat = d / (f.parent.name + f.stem + ".hlic")
            f.rename(flat)
        fresh = CompilationSession(cache_dir=d)
        comp = fresh.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "disk"
        # the touched entry moved into its shard
        moved = [f for f in d.rglob("*.hlic") if f.parent != d]
        assert moved

    def test_disk_budget_evicts_lru_entries(self, tmp_path):
        d = tmp_path / "cache"
        sess = CompilationSession(cache_dir=d, max_disk_bytes=1)
        sess.compile(SIMPLE_MAIN, "simple.c")
        sess.compile(OTHER_SOURCE, "other.c")
        assert sess.stats.disk_evictions >= 1
        total = sum(f.stat().st_size for f in d.rglob("*.hlic"))
        # only the most recently written entry may survive the budget
        assert len(list(d.rglob("*.hlic"))) <= 1, total

    def test_unbounded_by_default(self, disk_session):
        disk_session.compile(SIMPLE_MAIN, "simple.c")
        disk_session.compile(OTHER_SOURCE, "other.c")
        assert disk_session.stats.disk_evictions == 0
