"""CompilationSession: cache tiers, corruption fallback, warm-path proof."""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source, obs
from repro.backend.ddg import DDGMode
from repro.difftest.diff import build_matrix
from repro.driver.session import (
    CacheCorruption,
    CompilationSession,
    _decode_blob,
    _encode_blob,
)
from repro.obs import trace
from tests.conftest import FIG2_SOURCE, SIMPLE_MAIN

OTHER_SOURCE = "int x;\nint main() { x = 41; return x + 1; }\n"


@pytest.fixture()
def disk_session(tmp_path):
    return CompilationSession(cache_dir=tmp_path / "cache")


def _opcodes(comp) -> dict:
    return {n: [i.op for i in f.insns] for n, f in comp.rtl.functions.items()}


def _dep_stats(comp) -> dict:
    return {n: vars(s) for n, s in comp.dep_stats.items()}


class TestTiers:
    def test_cold_then_memory_hit(self):
        sess = CompilationSession()
        c1 = sess.compile(SIMPLE_MAIN, "simple.c")
        c2 = sess.compile(SIMPLE_MAIN, "simple.c")
        assert (c1.cache_state, c2.cache_state) == ("cold", "memory")
        assert sess.stats.misses == 1
        assert sess.stats.hits_memory == 1
        assert sess.stats.stores == 1
        assert c2.pipeline_stats.cached_prefix == ("parse", "hli-build", "lower")

    def test_disk_hit_across_sessions(self, tmp_path):
        d = tmp_path / "cache"
        CompilationSession(cache_dir=d).compile(SIMPLE_MAIN, "simple.c")
        sess = CompilationSession(cache_dir=d)
        comp = sess.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "disk"
        assert sess.stats.hits_disk == 1
        assert sess.stats.misses == 0

    def test_memory_tier_evicts_lru(self, tmp_path):
        sess = CompilationSession(cache_dir=tmp_path / "c", max_memory_entries=1)
        sess.compile(SIMPLE_MAIN, "simple.c")
        sess.compile(OTHER_SOURCE, "other.c")  # evicts simple.c
        assert sess.stats.evictions == 1
        comp = sess.compile(SIMPLE_MAIN, "simple.c")  # falls through to disk
        assert comp.cache_state == "disk"

    def test_different_sources_do_not_collide(self):
        sess = CompilationSession()
        c1 = sess.compile(SIMPLE_MAIN, "a.c")
        c2 = sess.compile(OTHER_SOURCE, "a.c")
        assert sess.stats.misses == 2
        assert _opcodes(c1) != _opcodes(c2)

    def test_backend_options_share_the_frontend_entry(self):
        # The key excludes back-end knobs: gcc and combined compiles of
        # the same source hit the same cached front end (timing.py's
        # double-compile relies on this).
        sess = CompilationSession()
        sess.compile(SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.GCC))
        comp = sess.compile(
            SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.COMBINED, cse=True)
        )
        assert comp.cache_state == "memory"
        assert sess.stats.misses == 1


class TestWarmPathSkipsFrontend:
    def test_span_counts_prove_frontend_skipped(self):
        sess = CompilationSession()
        opts = CompileOptions(mode=DDGMode.COMBINED)
        obs.reset()
        with obs.enabled_scope():
            sess.compile(FIG2_SOURCE, "fig2.c", opts)
            cold_names = [s.name for s in trace.iter_spans()]
            obs.reset()
            comp = sess.compile(FIG2_SOURCE, "fig2.c", opts)
            warm_names = [s.name for s in trace.iter_spans()]
        assert cold_names.count("frontend.parse_and_check") == 1
        assert "analysis.build_hli" in cold_names
        assert "backend.lowering" in cold_names
        # warm: parse, HLI construction, and lowering never run
        assert "frontend.parse_and_check" not in warm_names
        assert "analysis.build_hli" not in warm_names
        assert "backend.lowering" not in warm_names
        # ... while the back end still does
        assert "backend.mapping" in warm_names
        assert "backend.schedule" in warm_names
        assert comp.cache_state == "memory"


class TestResultEquivalence:
    @pytest.mark.parametrize(
        "config", build_matrix("quick"), ids=lambda c: c.name
    )
    def test_warm_compile_identical_to_cold_across_matrix(self, config, tmp_path):
        opts = config.to_options()
        cold = compile_source(SIMPLE_MAIN, "simple.c", opts)
        sess = CompilationSession(cache_dir=tmp_path / "c")
        sess.compile(SIMPLE_MAIN, "simple.c", opts)
        warm = sess.compile(SIMPLE_MAIN, "simple.c", opts)
        assert warm.cache_state == "memory"
        assert _opcodes(warm) == _opcodes(cold)
        assert _dep_stats(warm) == _dep_stats(cold)
        if opts.lint:
            assert warm.lint_report is not None
            assert not warm.lint_report.diagnostics


class TestCorruption:
    def _one_entry(self, sess):
        files = list(sess.cache_dir.glob("*.hlic"))
        assert len(files) == 1
        return files[0]

    def test_bit_flip_degrades_to_cold_compile(self, disk_session):
        ref = disk_session.compile(SIMPLE_MAIN, "simple.c")
        path = self._one_entry(disk_session)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        fresh = CompilationSession(cache_dir=disk_session.cache_dir)
        comp = fresh.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "cold"
        assert fresh.stats.corrupt == 1
        assert fresh.stats.misses == 1
        assert _opcodes(comp) == _opcodes(ref)
        assert _dep_stats(comp) == _dep_stats(ref)

    def test_corrupt_entry_is_evicted_and_rewritten(self, disk_session):
        disk_session.compile(SIMPLE_MAIN, "simple.c")
        path = self._one_entry(disk_session)
        path.write_bytes(b"garbage")
        fresh = CompilationSession(cache_dir=disk_session.cache_dir)
        fresh.compile(SIMPLE_MAIN, "simple.c")
        # the cold recompile re-stored a valid entry over the bad one
        comp = CompilationSession(cache_dir=disk_session.cache_dir).compile(
            SIMPLE_MAIN, "simple.c"
        )
        assert comp.cache_state == "disk"

    def test_truncated_blob_raises_corruption(self):
        comp = compile_source(SIMPLE_MAIN, "simple.c")
        blob = _encode_blob(comp)
        for cut in (0, 3, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CacheCorruption):
                _decode_blob(blob[:cut])

    def test_blob_round_trip(self):
        comp = compile_source(SIMPLE_MAIN, "simple.c")
        hli, frontend, rtl = _decode_blob(_encode_blob(comp))
        assert set(hli.entries) == set(comp.hli.entries)
        assert set(rtl.functions) == set(comp.rtl.functions)
        for name, fn in comp.rtl.functions.items():
            assert [i.op for i in fn.insns] == [
                i.op for i in rtl.functions[name].insns
            ]
