"""CompilationSession: cache tiers, corruption fallback, warm-path proof."""

from __future__ import annotations

import pytest

from repro import CompileOptions, compile_source, obs
from repro.backend.ddg import DDGMode
from repro.difftest.diff import build_matrix
from repro.driver.session import (
    CacheCorruption,
    CompilationSession,
    _decode_blob,
    _encode_blob,
)
from repro.obs import trace
from tests.conftest import FIG2_SOURCE, SIMPLE_MAIN

OTHER_SOURCE = "int x;\nint main() { x = 41; return x + 1; }\n"


@pytest.fixture()
def disk_session(tmp_path):
    return CompilationSession(cache_dir=tmp_path / "cache")


def _opcodes(comp) -> dict:
    return {n: [i.op for i in f.insns] for n, f in comp.rtl.functions.items()}


def _dep_stats(comp) -> dict:
    return {n: vars(s) for n, s in comp.dep_stats.items()}


class TestTiers:
    def test_cold_then_memory_hit(self):
        sess = CompilationSession()
        c1 = sess.compile(SIMPLE_MAIN, "simple.c")
        c2 = sess.compile(SIMPLE_MAIN, "simple.c")
        assert (c1.cache_state, c2.cache_state) == ("cold", "memory")
        assert sess.stats.misses == 1
        assert sess.stats.hits_memory == 1
        assert sess.stats.stores == 1
        assert c2.pipeline_stats.cached_prefix == ("parse", "hli-build", "lower")

    def test_disk_hit_across_sessions(self, tmp_path):
        d = tmp_path / "cache"
        CompilationSession(cache_dir=d).compile(SIMPLE_MAIN, "simple.c")
        sess = CompilationSession(cache_dir=d)
        comp = sess.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "disk"
        assert sess.stats.hits_disk == 1
        assert sess.stats.misses == 0

    def test_memory_tier_evicts_lru(self, tmp_path):
        sess = CompilationSession(cache_dir=tmp_path / "c", max_memory_entries=1)
        sess.compile(SIMPLE_MAIN, "simple.c")
        sess.compile(OTHER_SOURCE, "other.c")  # evicts simple.c's entries
        assert sess.stats.evictions >= 1
        comp = sess.compile(SIMPLE_MAIN, "simple.c")  # falls through to disk
        assert comp.cache_state == "disk"

    def test_different_sources_do_not_collide(self):
        sess = CompilationSession()
        c1 = sess.compile(SIMPLE_MAIN, "a.c")
        c2 = sess.compile(OTHER_SOURCE, "a.c")
        assert sess.stats.misses == 2
        assert _opcodes(c1) != _opcodes(c2)

    def test_backend_options_share_the_frontend_entry(self):
        # The key excludes back-end knobs: gcc and combined compiles of
        # the same source hit the same cached front end (timing.py's
        # double-compile relies on this).
        sess = CompilationSession()
        sess.compile(SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.GCC))
        comp = sess.compile(
            SIMPLE_MAIN, "simple.c", CompileOptions(mode=DDGMode.COMBINED, cse=True)
        )
        assert comp.cache_state == "memory"
        assert sess.stats.misses == 1


class TestWarmPathSkipsFrontend:
    def test_span_counts_prove_frontend_skipped(self):
        sess = CompilationSession()
        opts = CompileOptions(mode=DDGMode.COMBINED)
        obs.reset()
        with obs.enabled_scope():
            sess.compile(FIG2_SOURCE, "fig2.c", opts)
            cold_names = [s.name for s in trace.iter_spans()]
            obs.reset()
            comp = sess.compile(FIG2_SOURCE, "fig2.c", opts)
            warm_names = [s.name for s in trace.iter_spans()]
        assert cold_names.count("frontend.parse_and_check") == 1
        assert "analysis.build_hli" in cold_names
        assert "backend.lowering" in cold_names
        # warm: parse, HLI construction, and lowering never run
        assert "frontend.parse_and_check" not in warm_names
        assert "analysis.build_hli" not in warm_names
        assert "backend.lowering" not in warm_names
        # ... and neither does the back end: every function's finished
        # artifacts come from the per-function back-end tier
        assert "backend.mapping" not in warm_names
        assert "backend.schedule" not in warm_names
        assert comp.cache_state == "memory"
        assert all(v == "be:memory" for v in comp.fn_cache_states.values())
        assert comp.pipeline_stats.function_runs["schedule"] == []

    def test_new_backend_knobs_rerun_the_backend(self):
        # A warm front end with unseen back-end options must still run
        # the back-end passes (the be key folds the knobs in).
        sess = CompilationSession()
        opts = CompileOptions(mode=DDGMode.COMBINED)
        obs.reset()
        with obs.enabled_scope():
            sess.compile(FIG2_SOURCE, "fig2.c", opts)
            obs.reset()
            comp = sess.compile(
                FIG2_SOURCE, "fig2.c", CompileOptions(mode=DDGMode.GCC)
            )
            names = [s.name for s in trace.iter_spans()]
        assert "frontend.parse_and_check" not in names
        assert "backend.schedule" in names
        assert comp.cache_state == "memory"
        assert all(v == "fe:memory" for v in comp.fn_cache_states.values())


class TestResultEquivalence:
    @pytest.mark.parametrize(
        "config", build_matrix("quick"), ids=lambda c: c.name
    )
    def test_warm_compile_identical_to_cold_across_matrix(self, config, tmp_path):
        opts = config.to_options()
        cold = compile_source(SIMPLE_MAIN, "simple.c", opts)
        sess = CompilationSession(cache_dir=tmp_path / "c")
        sess.compile(SIMPLE_MAIN, "simple.c", opts)
        warm = sess.compile(SIMPLE_MAIN, "simple.c", opts)
        assert warm.cache_state == "memory"
        assert _opcodes(warm) == _opcodes(cold)
        assert _dep_stats(warm) == _dep_stats(cold)
        if opts.lint:
            assert warm.lint_report is not None
            assert not warm.lint_report.diagnostics


class TestCorruption:
    def _entries(self, sess):
        # manifest + one fe blob + one be blob per function, sharded
        files = sorted(sess.cache_dir.rglob("*.hlic"))
        assert len(files) >= 3
        return files

    def test_bit_flip_degrades_to_cold_compile(self, disk_session):
        ref = disk_session.compile(SIMPLE_MAIN, "simple.c")
        for path in self._entries(disk_session):
            blob = bytearray(path.read_bytes())
            blob[len(blob) // 2] ^= 0xFF
            path.write_bytes(bytes(blob))
        fresh = CompilationSession(cache_dir=disk_session.cache_dir)
        comp = fresh.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "cold"
        assert fresh.stats.corrupt >= 1
        assert fresh.stats.misses == 1
        assert _opcodes(comp) == _opcodes(ref)
        assert _dep_stats(comp) == _dep_stats(ref)

    def test_corrupt_fn_entry_recompiles_just_that_function(self, disk_session):
        ref = disk_session.compile(SIMPLE_MAIN, "simple.c")
        # corrupt only the manifest-keyed blob? we can't tell blobs apart
        # by name, so flip one file at a time and demand every outcome is
        # a correct compile (cold, incremental, or warm — never wrong)
        for path in self._entries(disk_session):
            blob = bytearray(path.read_bytes())
            blob[-1] ^= 0xFF
            path.write_bytes(bytes(blob))
            fresh = CompilationSession(cache_dir=disk_session.cache_dir)
            comp = fresh.compile(SIMPLE_MAIN, "simple.c")
            assert _opcodes(comp) == _opcodes(ref)
            assert _dep_stats(comp) == _dep_stats(ref)

    def test_corrupt_entry_is_evicted_and_rewritten(self, disk_session):
        disk_session.compile(SIMPLE_MAIN, "simple.c")
        for path in self._entries(disk_session):
            path.write_bytes(b"garbage")
        fresh = CompilationSession(cache_dir=disk_session.cache_dir)
        fresh.compile(SIMPLE_MAIN, "simple.c")
        # the cold recompile re-stored valid entries over the bad ones
        comp = CompilationSession(cache_dir=disk_session.cache_dir).compile(
            SIMPLE_MAIN, "simple.c"
        )
        assert comp.cache_state == "disk"

    def test_truncated_blob_raises_corruption(self):
        comp = compile_source(SIMPLE_MAIN, "simple.c")
        blob = _encode_blob(comp, {n: "x" for n in comp.rtl.functions})
        for cut in (0, 3, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CacheCorruption):
                _decode_blob(blob[:cut])

    def test_blob_round_trip(self):
        comp = compile_source(SIMPLE_MAIN, "simple.c")
        fe_keys = {n: f"key-{n}" for n in comp.rtl.functions}
        man = _decode_blob(_encode_blob(comp, fe_keys))
        assert set(man.hli.entries) == set(comp.hli.entries)
        assert set(man.rtl.functions) == set(comp.rtl.functions)
        assert man.fe_keys == fe_keys
        for name, fn in comp.rtl.functions.items():
            assert [i.op for i in fn.insns] == [
                i.op for i in man.rtl.functions[name].insns
            ]

    def test_fn_key_table_mismatch_is_corruption(self):
        comp = compile_source(SIMPLE_MAIN, "simple.c")
        with pytest.raises(CacheCorruption):
            _decode_blob(_encode_blob(comp))  # no fe_keys at all


class TestShardedDisk:
    def test_entries_are_sharded_git_object_style(self, disk_session):
        disk_session.compile(SIMPLE_MAIN, "simple.c")
        files = list(disk_session.cache_dir.rglob("*.hlic"))
        assert files
        for f in files:
            shard = f.parent.name
            assert f.parent.parent == disk_session.cache_dir
            assert len(shard) == 2
            # shard dir + stem reassemble the full 64-hex key
            assert len(shard + f.stem) == 64

    def test_flat_legacy_entry_is_migrated_on_first_touch(self, tmp_path):
        d = tmp_path / "cache"
        sess = CompilationSession(cache_dir=d)
        sess.compile(SIMPLE_MAIN, "simple.c")
        # flatten every sharded entry back into the legacy layout
        for f in list(d.rglob("*.hlic")):
            flat = d / (f.parent.name + f.stem + ".hlic")
            f.rename(flat)
        fresh = CompilationSession(cache_dir=d)
        comp = fresh.compile(SIMPLE_MAIN, "simple.c")
        assert comp.cache_state == "disk"
        # the touched entry moved into its shard
        moved = [f for f in d.rglob("*.hlic") if f.parent != d]
        assert moved

    def test_disk_budget_evicts_lru_entries(self, tmp_path):
        d = tmp_path / "cache"
        sess = CompilationSession(cache_dir=d, max_disk_bytes=1)
        sess.compile(SIMPLE_MAIN, "simple.c")
        sess.compile(OTHER_SOURCE, "other.c")
        assert sess.stats.disk_evictions >= 1
        total = sum(f.stat().st_size for f in d.rglob("*.hlic"))
        # only the most recently written entry may survive the budget
        assert len(list(d.rglob("*.hlic"))) <= 1, total

    def test_unbounded_by_default(self, disk_session):
        disk_session.compile(SIMPLE_MAIN, "simple.c")
        disk_session.compile(OTHER_SOURCE, "other.c")
        assert disk_session.stats.disk_evictions == 0
