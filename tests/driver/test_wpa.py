"""The whole-program driver: linked compilation, baselines, and caching."""

from repro.driver.session import CompilationSession
from repro.driver.wpa import WholeProgramResult, compile_whole_program
from repro.hli import faults
from repro.machine.executor import execute
from repro.workloads import wp_by_name

UNITS = [
    (
        "main.c",
        "int acc;\n"
        "extern int step(int k);\n"
        "int main() {\n"
        "    int i;\n"
        "    for (i = 1; i <= 5; i++) { acc = acc + step(i); }\n"
        "    return acc;\n"
        "}\n",
    ),
    (
        "lib.c",
        "int calls;\n"
        "int step(int k) {\n"
        "    calls = calls + 1;\n"
        "    return k * k + calls;\n"
        "}\n",
    ),
]


class TestResultShape:
    def test_units_link_and_image_populated(self):
        wp = compile_whole_program(UNITS)
        assert isinstance(wp, WholeProgramResult)
        assert list(wp.units) == ["main.c", "lib.c"]
        assert wp.image is not None
        assert wp.image_diagnostics == []
        assert {"main", "step"} <= set(wp.image.functions)
        assert set(wp.link.summaries) == {"main", "step"}
        assert wp.whole_program
        assert wp.summary_generations.keys() == wp.link.summaries.keys()

    def test_baseline_mode_skips_summary_consumption(self):
        pf = compile_whole_program(UNITS, whole_program=False)
        assert not pf.whole_program
        assert pf.summary_generations == {}
        # the link still runs: image and table are always produced
        assert pf.image is not None
        assert "step" in pf.link.table.symbols

    def test_total_dep_stats_sums_units(self):
        wp = compile_whole_program(UNITS)
        total = wp.total_dep_stats()
        per_unit = sum(c.total_dep_stats().call_tests for c in wp.units.values())
        assert total.call_tests == per_unit > 0


class TestSemantics:
    def test_wp_and_per_file_images_agree(self):
        wp = compile_whole_program(UNITS, whole_program=True)
        pf = compile_whole_program(UNITS, whole_program=False)
        r_wp = execute(wp.image, collect_trace=False)
        r_pf = execute(pf.image, collect_trace=False)
        assert (r_wp.ret, r_wp.output) == (r_pf.ret, r_pf.output)
        # acc = sum(k*k + calls) for k,calls in zip(1..5, 1..5) = 55 + 15
        assert r_wp.ret == 70

    def test_wp_deletes_call_edges_on_curated_workloads(self):
        for name in ("counters", "stages", "aliasing"):
            wl = wp_by_name(name)
            wp = compile_whole_program(wl.sources(), whole_program=True)
            pf = compile_whole_program(wl.sources(), whole_program=False)
            assert execute(wp.image, collect_trace=False).ret == (
                execute(pf.image, collect_trace=False).ret
            )
            assert wp.total_dep_stats().call_dep < pf.total_dep_stats().call_dep


class TestSessionIntegration:
    def test_wp_and_pf_artifacts_are_keyed_apart(self, tmp_path):
        session = CompilationSession(cache_dir=tmp_path)
        wp1 = compile_whole_program(UNITS, whole_program=True, session=session)
        assert session.stats.misses == len(UNITS)
        # the per-file baseline must not be served the WP artifacts:
        # the link salt keys them apart
        pf = compile_whole_program(UNITS, whole_program=False, session=session)
        assert session.stats.misses == 2 * len(UNITS)
        # rerunning WP with the same link state hits the cache
        wp2 = compile_whole_program(UNITS, whole_program=True, session=session)
        assert session.stats.misses == 2 * len(UNITS)
        assert session.stats.hits >= len(UNITS)
        r1 = execute(wp1.image, collect_trace=False)
        r2 = execute(wp2.image, collect_trace=False)
        rp = execute(pf.image, collect_trace=False)
        assert r1.ret == r2.ret == rp.ret

    def test_cached_wp_recompile_stays_linked(self, tmp_path):
        session = CompilationSession(cache_dir=tmp_path)
        cold = compile_whole_program(UNITS, whole_program=True, session=session)
        warm = compile_whole_program(UNITS, whole_program=True, session=session)
        assert cold.total_dep_stats().call_dep == warm.total_dep_stats().call_dep
        assert warm.lint_report().diagnostics == []


class TestGenerationAudit:
    def test_stale_summary_fault_skews_one_generation(self):
        clean = compile_whole_program(UNITS)
        with faults.inject(faults.STALE_SUMMARY):
            stale = compile_whole_program(UNITS)
        diffs = [
            fn
            for fn in clean.summary_generations
            if clean.summary_generations[fn] != stale.summary_generations[fn]
        ]
        assert len(diffs) == 1
        fn = diffs[0]
        assert stale.summary_generations[fn] == clean.summary_generations[fn] - 1
