"""Function-grained invalidation: fingerprints, sessions, and the oracle."""

from __future__ import annotations

import pytest

from repro import CompileOptions
from repro.analysis.alias import analyze_points_to
from repro.analysis.refmod import analyze_refmod
from repro.difftest.incremental import (
    canonical_rtl,
    edit_helper,
    run_incremental,
)
from repro.driver.compile import compile_source
from repro.driver.incremental import (
    function_keys,
    function_spans,
    transitive_callers,
)
from repro.driver.session import CompilationSession
from repro.frontend import parse_and_check
from repro.machine.executor import execute

# main -> mid -> leaf, with `other` on a disconnected branch: an edit to
# leaf must invalidate {leaf, mid, main} and spare other.
CHAIN_SOURCE = """\
int gs0;
int leaf(int a, int b) {
    int r = a * b + 1;
    return r;
}
int mid(int a, int b) {
    int r = leaf(a, b) + a;
    return r;
}
int other(int a, int b) {
    int r = a - b;
    return r;
}
int main() {
    int x = mid(3, 4);
    int y = other(9, 2);
    gs0 = x + y;
    return gs0;
}
"""


def _keys(source: str, salt: str = ""):
    program, table = parse_and_check(source, "chain.c")
    pts = analyze_points_to(program, table)
    refmod = analyze_refmod(program, table, pts)
    return function_keys(source, program, table, pts, refmod, salt=salt)


class TestFingerprints:
    def test_spans_partition_the_source(self):
        program, _ = parse_and_check(CHAIN_SOURCE, "chain.c")
        spans = function_spans(CHAIN_SOURCE, program)
        assert set(spans) == {"leaf", "mid", "other", "main"}
        # spans are disjoint, ordered, and cover every function body line
        ordered = sorted(spans.values())
        for (s1, e1), (s2, _) in zip(ordered, ordered[1:]):
            assert s1 <= e1 < s2

    def test_call_graph_edges(self):
        keys = _keys(CHAIN_SOURCE)
        assert keys.callees["main"] == {"mid", "other"}
        assert keys.callees["mid"] == {"leaf"}
        assert keys.callers["leaf"] == {"mid"}
        assert transitive_callers(keys, {"leaf"}) == {"mid", "main"}
        assert transitive_callers(keys, {"other"}) == {"main"}
        assert transitive_callers(keys, {"main"}) == set()

    def test_edit_changes_exactly_editee_and_callers(self):
        # same line count, so nothing below the edit moves
        edited = CHAIN_SOURCE.replace(
            "int r = a * b + 1;", "int r = a * b + 2;"
        )
        before, after = _keys(CHAIN_SOURCE), _keys(edited)
        changed = {n for n in before.fe if before.fe[n] != after.fe[n]}
        assert changed == {"leaf", "mid", "main"}
        assert before.local["other"] == after.local["other"]

    def test_whitespace_shift_invalidates_functions_below(self):
        # HLI joins on absolute line numbers: inserting a line between
        # `mid` and `other` moves every later function, retiring their
        # entries (and mid's, whose span absorbs the new blank line) —
        # but leaf, fully above the insertion, survives.
        edited = CHAIN_SOURCE.replace(
            "int other(int a, int b) {", "\nint other(int a, int b) {"
        )
        before, after = _keys(CHAIN_SOURCE), _keys(edited)
        changed = {n for n in before.fe if before.fe[n] != after.fe[n]}
        assert "leaf" not in changed
        assert {"other", "main"} <= changed

    def test_salt_retires_every_key(self):
        a, b = _keys(CHAIN_SOURCE, salt="v1"), _keys(CHAIN_SOURCE, salt="v2")
        assert all(a.fe[n] != b.fe[n] for n in a.fe)
        assert a.local == b.local  # salt only enters the chained key

    def test_global_shape_change_retires_every_key(self):
        edited = CHAIN_SOURCE.replace("int gs0;", "int gs0; int gs1;")
        before, after = _keys(CHAIN_SOURCE), _keys(edited)
        assert all(before.fe[n] != after.fe[n] for n in before.fe)


class TestIncrementalSession:
    OPTS = CompileOptions(cse=True, licm=True, lint=True)

    def test_single_edit_recompiles_exactly_the_invalidated_set(self):
        sess = CompilationSession()
        sess.compile(CHAIN_SOURCE, "chain.c", self.OPTS)
        edited = CHAIN_SOURCE.replace(
            "int r = a * b + 1;", "int r = a * b + 3;"
        )
        comp = sess.compile(edited, "chain.c", self.OPTS)
        assert comp.cache_state == "incremental"
        ran: set[str] = set()
        for units in comp.pipeline_stats.function_runs.values():
            ran |= set(units)
        assert ran == {"leaf", "mid", "main"}
        assert comp.fn_cache_states["other"] == "be:memory"
        assert comp.fn_cache_states["leaf"] == "cold"

    def test_refmod_edit_transitively_invalidates_callers(self):
        sess = CompilationSession()
        sess.compile(CHAIN_SOURCE, "chain.c", self.OPTS)
        # leaf grows a MOD of gs0: mid and main see a new callee effect
        edited = CHAIN_SOURCE.replace(
            "    int r = a * b + 1;\n    return r;",
            "    int r = a * b + 1;\n    gs0 = gs0 + a; return r;",
        )
        comp = sess.compile(edited, "chain.c", self.OPTS)
        ran: set[str] = set()
        for units in comp.pipeline_stats.function_runs.values():
            ran |= set(units)
        assert ran == {"leaf", "mid", "main"}
        # never served stale: the spliced result equals a cold compile
        cold = compile_source(edited, "chain.c", self.OPTS)
        assert canonical_rtl(comp.rtl) == canonical_rtl(cold.rtl)
        assert execute(comp.rtl, collect_trace=False).ret == execute(
            cold.rtl, collect_trace=False
        ).ret
        assert not comp.lint_report.findings

    def test_fn_stats_distinguish_levels(self):
        sess = CompilationSession()
        sess.compile(CHAIN_SOURCE, "chain.c", self.OPTS)
        edited = CHAIN_SOURCE.replace("a - b", "a - b - 1")  # edits `other`
        sess.compile(edited, "chain.c", self.OPTS)
        # file-level: one miss per distinct source; function-level: the
        # second compile served unchanged functions straight from the
        # back-end tier (be-first probing), so the front-end tier was
        # never touched for them
        assert sess.stats.misses == 2
        assert sess.stats.hits == 0
        assert sess.stats.be_hits >= 2
        assert sess.stats.be_decodes == sess.stats.be_hits
        assert sess.stats.fn_hits == 0
        assert sess.stats.fe_decodes == 0
        d = sess.stats.to_dict()
        assert d["fn_hits_memory"] == sess.stats.fn_hits_memory
        assert d["be_hits_memory"] == sess.stats.be_hits_memory

    def test_knob_change_falls_back_to_fe_tier(self):
        # Unseen back-end knobs: be keys miss, fe entries satisfy the
        # front end, and the back end re-runs over every function.
        sess = CompilationSession()
        sess.compile(CHAIN_SOURCE, "chain.c", self.OPTS)
        from repro.backend.ddg import DDGMode

        comp = sess.compile(
            CHAIN_SOURCE, "chain.c", CompileOptions(mode=DDGMode.GCC, cse=True)
        )
        assert all(v == "fe:memory" for v in comp.fn_cache_states.values())
        assert sess.stats.fn_hits == len(comp.rtl.functions)
        assert sess.stats.fe_decodes == sess.stats.fn_hits


class TestOracle:
    def test_canonicalization_is_stable_across_compiles(self):
        a = compile_source(CHAIN_SOURCE, "chain.c", CompileOptions(cse=True))
        b = compile_source(CHAIN_SOURCE, "chain.c", CompileOptions(cse=True))
        assert canonical_rtl(a.rtl) == canonical_rtl(b.rtl)
        edited = CHAIN_SOURCE.replace("a * b + 1", "a * b + 4")
        c = compile_source(edited, "chain.c", CompileOptions(cse=True))
        assert canonical_rtl(a.rtl) != canonical_rtl(c.rtl)

    def test_edit_helper_preserves_line_count(self):
        from repro.difftest.gen import generate

        src = generate(7)
        import random

        for refmod in (False, True):
            edit = edit_helper(src, random.Random(1), refmod_changing=refmod)
            if edit is None:
                continue
            assert edit.source.count("\n") == src.count("\n")
            assert edit.source != src

    @pytest.mark.parametrize("seed", range(4))
    def test_random_plain_edits_splice_correctly(self, seed):
        res = run_incremental(seed)
        assert res.ok, res.failures

    @pytest.mark.parametrize("seed", range(4))
    def test_random_refmod_edits_never_serve_stale(self, seed):
        res = run_incremental(seed, refmod_changing=True)
        assert res.ok, res.failures
