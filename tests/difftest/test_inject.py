"""Fault injection: the harness must detect every seeded miscompilation."""

import pytest

from repro.backend.ddg import DDGMode
from repro.difftest.diff import build_matrix, run_differential
from repro.difftest.gen import GenConfig, generate
from repro.hli import faults

QUICK = build_matrix("quick")


def _first_detection(fault, kinds, seeds=range(8), preset="medium"):
    """Fuzz under an armed fault until a failure of an expected kind."""
    with faults.inject(fault):
        for seed in seeds:
            source = generate(seed, GenConfig.preset(preset))
            res = run_differential(source, seed=seed, matrix=QUICK)
            hits = [f for f in res.failures if f.kind in kinds]
            if hits:
                return res, hits
    return None, []


def test_inject_context_manager_arms_and_disarms():
    assert not faults.active_faults()
    with faults.inject(faults.FLIP_VERDICT):
        assert faults.is_active(faults.FLIP_VERDICT)
        assert not faults.is_active(faults.DROP_MAINTENANCE)
    assert not faults.active_faults()


def test_inject_rejects_unknown_fault():
    with pytest.raises(ValueError):
        with faults.inject("made-up-fault"):
            pass


def test_drop_maintenance_detected_by_accounting():
    res, hits = _first_detection(
        faults.DROP_MAINTENANCE, kinds={"maintenance", "lint", "semantic"}
    )
    assert res is not None, "dropped delete_item went undetected"
    assert any(h.kind == "maintenance" for h in hits)
    assert "delete_item" in hits[0].detail or "line table" in hits[0].detail


def test_stale_generation_detected_by_lint():
    res, hits = _first_detection(
        faults.STALE_GENERATION, kinds={"lint", "semantic", "compile-crash"}
    )
    assert res is not None, "frozen generation counter went undetected"


def test_flip_verdict_detected():
    res, hits = _first_detection(
        faults.FLIP_VERDICT, kinds={"lint", "semantic", "memory"}
    )
    assert res is not None, "flipped dependence verdict went undetected"


def test_clean_pipeline_stays_clean():
    """The detection tests above are meaningful only if the same corpus is
    failure-free with no fault armed."""
    for seed in range(8):
        source = generate(seed, GenConfig.preset("medium"))
        res = run_differential(source, seed=seed, matrix=QUICK)
        assert res.ok, [f.format() for f in res.failures]
