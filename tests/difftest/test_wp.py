"""Whole-program differential runner over generated multi-file programs."""

from repro.difftest.gen import generate_units
from repro.difftest.wp import run_wp_differential
from repro.hli import faults


class TestGenerateUnits:
    def test_deterministic_per_seed(self):
        assert generate_units(11) == generate_units(11)
        assert generate_units(11) != generate_units(12)

    def test_unit_count_and_filenames(self):
        units = generate_units(3, n_units=3)
        assert [name for name, _src in units] == ["u0.c", "u1.c", "u2.c"]
        units2 = generate_units(3, n_units=2)
        assert len(units2) == 2

    def test_exactly_one_main_with_cross_unit_externs(self):
        units = generate_units(7, n_units=3)
        mains = [src for _n, src in units if "int main()" in src]
        assert len(mains) == 1
        joined = "\n".join(src for _n, src in units)
        assert "extern" in joined

    def test_every_unit_parses_standalone(self):
        from repro.frontend import parse_and_check

        for name, src in generate_units(19, n_units=4):
            parse_and_check(src, name)  # must not raise


class TestDifferential:
    def test_seeded_runs_are_clean(self):
        for seed in (0, 3, 5, 10):
            res = run_wp_differential(seed)
            assert res.ok, f"seed {seed}: {res.failures}"
            assert res.wp_lint_rules == []
            assert res.edges_deleted >= 0

    def test_some_seed_actually_deletes_edges(self):
        deleted = sum(run_wp_differential(seed).edges_deleted for seed in range(8))
        assert deleted > 0


class TestFaultVisibility:
    def test_drop_summary_is_a_finding(self):
        with faults.inject(faults.DROP_SUMMARY):
            res = run_wp_differential(0)
        assert not res.ok
        assert any(r.startswith("HLI009") for r in res.wp_lint_rules)

    def test_stale_summary_is_a_finding(self):
        with faults.inject(faults.STALE_SUMMARY):
            res = run_wp_differential(0)
        assert not res.ok
        assert any(r.startswith("HLI012") for r in res.wp_lint_rules)
