"""The differential executor: matrices, checks, and failure reporting."""

import pytest

from repro.backend.ddg import DDGMode
from repro.difftest.diff import MatrixConfig, build_matrix, run_differential
from repro.difftest.gen import GenConfig, generate

SIMPLE = """\
int a[16];
int total;

int main() {
    int i;
    for (i = 0; i < 16; i++) {
        a[i] = i * 3;
    }
    total = 0;
    for (i = 0; i < 16; i++) {
        total = total + a[i];
    }
    return total;
}
"""


def test_quick_matrix_shape():
    matrix = build_matrix("quick")
    assert len(matrix) == 4
    assert len({mc.name for mc in matrix}) == 4
    assert any(mc.mode is DDGMode.GCC for mc in matrix)
    assert any(mc.lint for mc in matrix)
    assert any(not mc.schedule for mc in matrix)


def test_full_matrix_shape():
    matrix = build_matrix("full")
    assert len(matrix) == 16
    assert len({mc.name for mc in matrix}) == 16
    for mode in DDGMode:
        assert sum(mc.mode is mode for mc in matrix) >= 5
    # lint runs on the combined end-points only
    assert sum(mc.lint for mc in matrix) == 2


def test_unknown_matrix_rejected():
    with pytest.raises(ValueError):
        build_matrix("exhaustive")


def test_simple_program_passes_quick_matrix():
    res = run_differential(SIMPLE, seed=1)
    assert res.ok, [f.format() for f in res.failures]
    assert res.configs_run == 4
    assert res.checks > 4
    assert res.reference is not None
    assert res.reference.ret == sum(i * 3 for i in range(16))


def test_generated_program_passes_full_matrix():
    source = generate(11, GenConfig.small())
    res = run_differential(source, seed=11, matrix=build_matrix("full"))
    assert res.ok, [f.format() for f in res.failures]
    assert res.configs_run == 16


def test_frontend_rejection_is_one_failure():
    res = run_differential("int main() { return undeclared; }")
    assert not res.ok
    assert [f.kind for f in res.failures] == ["frontend-error"]
    assert res.configs_run == 0


def test_matrix_config_to_options():
    mc = MatrixConfig("x", mode=DDGMode.HLI, cse=True, unroll=4, schedule=False)
    opts = mc.to_options()
    assert opts.mode is DDGMode.HLI
    assert opts.cse and not opts.licm
    assert opts.unroll == 4
    assert not opts.schedule
    assert mc.has_passes
    assert not MatrixConfig("y").has_passes


def test_failure_formatting_carries_seed():
    res = run_differential("int main() { return missing; }", seed=42)
    line = res.failures[0].format()
    assert "seed=42" in line
    assert "frontend-error" in line
