"""The ``repro-fuzz`` command-line interface."""

import io
import json

import pytest

from repro.difftest import cli


def test_clean_fuzz_run_exits_zero(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = cli.main(["--count", "4", "--gen", "small", "--quiet"])
    assert code == 0


def test_inject_mode_detects_all_faults_and_exits_zero(capsys):
    code = cli.main(["--inject", "--count", "6", "--gen", "medium"])
    out = capsys.readouterr().out
    assert code == 0
    assert "6/6 seeded faults detected" in out
    assert "DETECTED" in out
    assert "NOT DETECTED" not in out


def test_stats_out_writes_metrics_snapshot(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    from repro.obs import metrics

    metrics.reset()  # the registry is process-global; drop earlier tests' counts
    stats = tmp_path / "stats.json"
    code = cli.main(
        ["--count", "2", "--gen", "small", "--quiet", "--stats-out", str(stats)]
    )
    assert code == 0
    payload = json.loads(stats.read_text())
    assert payload["counters"]["difftest.programs"] == 2
    assert any(k.startswith("difftest.verdict") for k in payload["counters"])


def test_time_budget_stops_early(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    out = io.StringIO()
    args = cli._build_parser().parse_args(
        ["--count", "100000", "--time-budget", "0.000001", "--gen", "small"]
    )
    code = cli.run_fuzz(args, out=out)
    assert code == 0
    assert "time budget exhausted" in out.getvalue()


def test_bad_count_rejected(capsys):
    assert cli.main(["--count", "0"]) == 2


def test_failing_program_is_reduced_and_persisted(tmp_path, monkeypatch):
    """End to end through main(): arm a fault so a real failure flows
    through reduction into the crash directory and exits non-zero."""
    monkeypatch.chdir(tmp_path)
    from repro.hli import faults

    with faults.inject(faults.DROP_MAINTENANCE):
        code = cli.main(
            ["--count", "12", "--gen", "medium", "--max-failures", "1",
             "--crash-dir", str(tmp_path / "crashes")]
        )
    assert code == 1
    crashes = list((tmp_path / "crashes").glob("*.c"))
    assert crashes, "reduced reproducer was not written"
    text = crashes[0].read_text()
    assert "repro-fuzz reduced reproducer" in text


def test_entry_point_registered():
    tomllib = pytest.importorskip("tomllib")
    from pathlib import Path

    root = Path(__file__).resolve().parents[2]
    with open(root / "pyproject.toml", "rb") as f:
        scripts = tomllib.load(f)["project"]["scripts"]
    assert scripts["repro-fuzz"] == "repro.difftest.cli:main"
