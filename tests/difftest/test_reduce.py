"""The delta-debugging reducer: shrinks, preserves failures, persists."""

from repro.difftest.diff import build_matrix
from repro.difftest.gen import GenConfig, generate
from repro.difftest.reduce import reduce_source, write_crash
from repro.hli import faults

QUICK = build_matrix("quick")


def _failing_program(fault=faults.DROP_MAINTENANCE, seeds=range(12)):
    """A (source, seed) pair that fails the quick matrix under ``fault``."""
    from repro.difftest.diff import run_differential

    with faults.inject(fault):
        for seed in seeds:
            source = generate(seed, GenConfig.preset("medium"))
            res = run_differential(source, seed=seed, matrix=QUICK)
            if not res.ok:
                return source, seed
    raise AssertionError("no failing program found for the reducer test")


def test_passing_program_returned_unreduced():
    source = "int main() { return 7; }\n"
    case = reduce_source(source, matrix=QUICK)
    assert case.reduced == source
    assert case.result is None or case.result.ok


def test_reducer_shrinks_failing_program(tmp_path):
    source, seed = _failing_program()
    with faults.inject(faults.DROP_MAINTENANCE):
        case = reduce_source(source, seed=seed, matrix=QUICK, max_rounds=2)
    assert case.reduced_lines < case.original_lines
    assert case.result is not None and not case.result.ok
    assert case.kinds  # the preserved failure kinds were recorded
    # the reduced program is still front-end valid
    from repro.frontend import parse_and_check

    parse_and_check(case.reduced)

    path = write_crash(case, tmp_path / "crashes")
    text = path.read_text()
    assert text.startswith("// repro-fuzz reduced reproducer")
    assert f"// seed: {seed}" in text
    assert "int main()" in text


def test_reducer_never_returns_invalid_source():
    """Even when told to preserve an impossible kind, the reducer's output
    must parse (validity is gated before the interestingness test)."""
    source = generate(3, GenConfig.small())
    case = reduce_source(
        source, seed=3, matrix=QUICK, kinds=frozenset({"semantic"}), max_rounds=1
    )
    from repro.frontend import parse_and_check

    parse_and_check(case.reduced)
    # nothing fails, so nothing may be removed
    assert case.reduced == source
