"""The random program generator: validity, determinism, coverage."""

import random

import pytest

from repro.difftest.gen import GenConfig, ProgramGen, generate
from repro.frontend import parse_and_check
from repro.frontend.interp import interpret

PRESETS = ["small", "medium", "large"]


@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_parse_and_terminate(preset, seed):
    source = generate(seed, GenConfig.preset(preset))
    program, _ = parse_and_check(source)
    result = interpret(program)
    assert isinstance(result.ret, int)
    # the checksum return is masked to 16 bits
    assert 0 <= result.ret <= 65535


@pytest.mark.parametrize("preset", PRESETS)
def test_generation_is_deterministic(preset):
    cfg = GenConfig.preset(preset)
    assert generate(7, cfg) == generate(7, cfg)
    assert generate(7, cfg) != generate(8, cfg)


def test_explicit_rng_overrides_seed():
    # same underlying stream => same program regardless of the seed arg
    a = generate(0, rng=random.Random(99))
    b = generate(12345, rng=random.Random(99))
    assert a == b


def test_feature_coverage_across_seeds():
    """Every advertised construct appears somewhere in a modest corpus."""
    corpus = "\n".join(generate(s, GenConfig.large()) for s in range(30))
    assert "for (" in corpus
    assert "do {" in corpus
    assert "} while (" in corpus
    assert "if (" in corpus
    assert "*gp" in corpus
    assert "gp++" in corpus
    assert "gr.fa" in corpus  # struct fields
    assert "f0(" in corpus  # helper calls
    assert "printf" in corpus
    assert "double gd0;" in corpus
    # affine subscript shapes: scaled and shifted index expressions
    assert "2 * i" in corpus
    assert "+ 1]" in corpus or "- 1]" in corpus


def test_disabled_features_stay_out():
    cfg = GenConfig(
        arrays=2, pointers=False, structs=False, calls=False,
        floats=False, prints=False,
    )
    corpus = "\n".join(generate(s, cfg) for s in range(10))
    assert "gp" not in corpus
    assert "struct" not in corpus
    assert "gr." not in corpus
    assert "f0(" not in corpus
    assert "printf" not in corpus
    assert "double" not in corpus


def test_checksum_epilogue_folds_every_array():
    cfg = GenConfig.medium()
    source = generate(3, cfg)
    for k in range(cfg.arrays):
        assert f"chk = chk * 31 + ga{k}[i0];" in source
    assert "return chk & 65535;" in source


def test_config_validation():
    with pytest.raises(ValueError):
        GenConfig(array_size=20)  # not a power of two
    with pytest.raises(ValueError):
        GenConfig(arrays=0)
    with pytest.raises(ValueError):
        GenConfig.preset("gigantic")


def test_program_gen_reuses_supplied_rng():
    rng = random.Random(5)
    first = ProgramGen(rng).build()
    second = ProgramGen(rng).build()  # stream advanced => different program
    assert first != second
