"""Targeted per-rule tests, including the post-maintenance path.

Once maintenance has legitimately run (``entry.generation != 0``) the
reference-rebuild audit is unavailable — the tables are *supposed* to
differ from the front-end's.  These tests corrupt tables at a non-zero
generation and verify the independent oracle still proves the claims
wrong (HLI001/HLI002/HLI008), and that the structural and staleness
audits (HLI006/HLI007) fire regardless.
"""

from repro import CompileOptions, compile_source
from repro.checker import dynamic_audit, lint_compilation
from repro.hli.tables import EqClass, EquivType

SCALARS = """
int s;
int main() { s = 1; s = s + 2; return s; }
"""

TWO_GLOBALS = """
int x;
int y;
int main() { x = 1; y = 2; return x + y; }
"""

CALL = """
int g;
void poke() { g = 42; }
int main() { g = 0; poke(); return g; }
"""


def _compile(src):
    return compile_source(src, "rules.c", CompileOptions(schedule=False))


def _root(comp, name="main"):
    entry = comp.hli.entries[name]
    return entry, entry.root_region()


def _class_of_symbol(comp, region, label_part):
    for cls in region.eq_classes:
        if label_part in cls.label:
            return cls
    raise AssertionError(f"no class labelled *{label_part}* in {region.region_id}")


class TestStaticOracleRules:
    def test_hli001_split_definite_class(self):
        comp = _compile(SCALARS)
        entry, root = _root(comp)
        cls = _class_of_symbol(comp, root, "s")
        assert len(cls.member_items) >= 2
        # split: claim the accesses to s are independent (NONE)
        stolen = cls.member_items.pop()
        root.eq_classes.append(
            EqClass(class_id=9001, equiv_type=EquivType.DEFINITE, member_items=[stolen])
        )
        entry.generation += 1  # simulate damage after legitimate maintenance
        report = lint_compilation(comp)
        assert report.has_rule("HLI001"), report.format_text()

    def test_hli008_merge_disjoint_classes(self):
        comp = _compile(TWO_GLOBALS)
        entry, root = _root(comp)
        cx = _class_of_symbol(comp, root, "x")
        cy = _class_of_symbol(comp, root, "y")
        cx.member_items.extend(cy.member_items)  # x and y now "same location"
        cy.member_items.clear()
        entry.generation += 1
        report = lint_compilation(comp)
        assert report.has_rule("HLI008"), report.format_text()

    def test_hli002_dropped_mod_bit(self):
        comp = _compile(CALL)
        entry, root = _root(comp)
        rms = [rm for rm in root.refmod_entries if rm.mod_classes]
        assert rms, "expected a MOD summary for the poke() call"
        for rm in rms:
            rm.mod_classes.clear()
            rm.ref_classes.clear()
        entry.generation += 1
        report = lint_compilation(comp)
        assert report.has_rule("HLI002"), report.format_text()

    def test_dynamic_audit_catches_split_class(self):
        comp = compile_source(SCALARS, "dyn.c", CompileOptions())
        entry, root = _root(comp)
        cls = _class_of_symbol(comp, root, "s")
        stolen = cls.member_items.pop()
        root.eq_classes.append(
            EqClass(class_id=9002, equiv_type=EquivType.DEFINITE, member_items=[stolen])
        )
        entry.generation += 1
        report = dynamic_audit(comp)
        assert report.has_rule("HLI001"), report.format_text()
        assert any(d.source == "dynamic" for d in report.diagnostics)


class TestStructuralRules:
    def test_hli006_item_removed_from_line_table(self):
        comp = _compile(SCALARS)
        entry, _ = _root(comp)
        line = next(le for le in entry.line_table.entries.values() if le.items)
        line.items.pop()
        entry.generation += 1
        report = lint_compilation(comp)
        assert report.has_rule("HLI006"), report.format_text()

    def test_hli007_consumer_query_stale(self):
        from repro.hli.maintenance import generate_item
        from repro.hli.tables import ItemType

        comp = _compile(SCALARS)
        entry, root = _root(comp)
        # legitimate maintenance, but the consumer query is never refreshed
        generate_item(entry, line=1, item_type=ItemType.LOAD, region_id=root.region_id)
        assert comp.queries["main"].is_stale
        report = lint_compilation(comp)
        assert report.has_rule("HLI007"), report.format_text()
        # staleness is a warning, not an error
        assert all(
            d.severity.value == "warning"
            for d in report.diagnostics
            if d.rule.rule_id.startswith("HLI007")
        )
