"""The auditor must be silent on correct compilations (no false positives)."""

import pytest

from repro import CompileOptions, compile_source
from repro.backend.ddg import DDGMode
from repro.checker import dynamic_audit, lint_compilation
from repro.workloads.suite import BENCHMARKS, by_name

ALL_NAMES = [b.name for b in BENCHMARKS]
#: small traces, safe for the quadratic dynamic window check
DYNAMIC_NAMES = ["wc", "048.ora", "052.alvinn"]


class TestCleanCorpus:
    @pytest.mark.parametrize("name", ALL_NAMES)
    @pytest.mark.parametrize("mode", list(DDGMode))
    def test_benchmark_clean_every_mode(self, name, mode):
        bench = by_name(name)
        comp = compile_source(bench.source, bench.name, CompileOptions(mode=mode))
        report = lint_compilation(comp)
        assert report.clean, report.format_text()
        assert sum(report.claims_checked.values()) > 0

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_benchmark_clean_after_optimizations(self, name):
        bench = by_name(name)
        comp = compile_source(
            bench.source,
            bench.name,
            CompileOptions(cse=True, licm=True, unroll=2),
        )
        report = lint_compilation(comp)
        assert report.clean, report.format_text()

    @pytest.mark.parametrize("name", DYNAMIC_NAMES)
    def test_dynamic_audit_clean(self, name):
        bench = by_name(name)
        comp = compile_source(bench.source, bench.name, CompileOptions())
        report = dynamic_audit(comp, input_text=bench.input_text)
        assert report.clean, report.format_text()
        # the audit must actually replay NONE verdicts to mean anything
        assert report.claims_checked.get("dynamic_none", 0) > 0


class TestDriverHook:
    def test_compile_options_lint(self):
        bench = by_name("wc")
        comp = compile_source(bench.source, bench.name, CompileOptions(lint=True))
        assert comp.lint_report is not None
        assert comp.lint_report.clean, comp.lint_report.format_text()

    def test_lint_off_by_default(self):
        bench = by_name("wc")
        comp = compile_source(bench.source, bench.name, CompileOptions())
        assert comp.lint_report is None
