"""Corruption-injection property tests (the auditor's detection power).

Seeded random corruptions are injected directly into the HLI tables of
correctly compiled benchmarks — the kinds of damage a buggy maintenance
implementation would cause — and the auditor must flag each one with the
*right* stable rule ID:

* eq-class merges / member moves       → ``HLI003-eqclass-membership``
* LCDD distance shrinks / arc drops    → ``HLI004-lcdd-distance``
* REF/MOD bit drops                    → ``HLI005-refmod-summary``

The acceptance bar is >= 95% detection across all seeded corruptions.
"""

import copy
import random

import pytest

from repro import CompileOptions, compile_source
from repro.checker import lint_compilation
from repro.workloads.suite import by_name

#: benchmarks with enough table structure for all three corruption kinds
CORPUS = ["wc", "129.compress", "034.mdljdp2", "077.mdljsp2", "103.su2cor"]
SEEDS = range(6)


# -- corruption operators (return True when they actually mutated) ------------


def corrupt_eqclass(entries, rng) -> bool:
    """Merge one class into another (or move a member between classes)."""
    sites = []
    for entry in entries.values():
        for region in entry.regions.values():
            donors = [c for c in region.eq_classes if c.member_items]
            if len(region.eq_classes) >= 2 and donors:
                sites.append((region, donors))
    if not sites:
        return False
    region, donors = rng.choice(sites)
    src = rng.choice(donors)
    dst = rng.choice([c for c in region.eq_classes if c is not src])
    if rng.random() < 0.5 and len(src.member_items) > 1:
        dst.member_items.append(src.member_items.pop())  # move one member
    else:
        dst.member_items.extend(src.member_items)  # full merge
        src.member_items.clear()
    return True


def corrupt_lcdd(entries, rng) -> bool:
    """Shrink a dependence distance (or drop the arc entirely)."""
    sites = []
    for entry in entries.values():
        for region in entry.regions.values():
            for arc in region.lcdd_entries:
                sites.append((region, arc))
    if not sites:
        return False
    region, arc = rng.choice(sites)
    if arc.distance is not None and rng.random() < 0.7:
        arc.distance += rng.choice([1, 2, 5])
    else:
        region.lcdd_entries.remove(arc)
    return True


def corrupt_refmod(entries, rng) -> bool:
    """Drop a MOD bit (the classic 'call no longer clobbers' bug)."""
    sites = []
    for entry in entries.values():
        for region in entry.regions.values():
            for rm in region.refmod_entries:
                if rm.mod_classes or rm.ref_classes:
                    sites.append(rm)
    if not sites:
        return False
    rm = rng.choice(sites)
    if rm.mod_classes:
        rm.mod_classes.pop(rng.randrange(len(rm.mod_classes)))
    else:
        rm.ref_classes.pop(rng.randrange(len(rm.ref_classes)))
    return True


KINDS = [
    (corrupt_eqclass, "HLI003"),
    (corrupt_lcdd, "HLI004"),
    (corrupt_refmod, "HLI005"),
]


@pytest.fixture(scope="module")
def compilations():
    out = {}
    for name in CORPUS:
        bench = by_name(name)
        comp = compile_source(bench.source, bench.name, CompileOptions(schedule=False))
        out[name] = (comp, copy.deepcopy(comp.hli.entries))
    return out


class TestDetectionRate:
    def test_seeded_corruptions_detected(self, compilations):
        attempted = detected = 0
        misses = []
        for name in CORPUS:
            comp, pristine = compilations[name]
            for corrupt, want_rule in KINDS:
                for seed in SEEDS:
                    rng = random.Random(f"{name}/{want_rule}/{seed}")
                    entries = copy.deepcopy(pristine)
                    comp.hli.entries = entries
                    if not corrupt(entries, rng):
                        continue
                    attempted += 1
                    report = lint_compilation(comp)
                    if report.has_rule(want_rule):
                        detected += 1
                    else:
                        misses.append((name, want_rule, seed, report.format_text()))
            comp.hli.entries = pristine
        assert attempted >= 60, "corruption corpus unexpectedly small"
        rate = detected / attempted
        assert rate >= 0.95, (
            f"detection rate {rate:.0%} ({detected}/{attempted}); misses: "
            + "; ".join(f"{m[0]} {m[1]} seed={m[2]}" for m in misses[:5])
        )

    def test_clean_baseline(self, compilations):
        """Sanity: the pristine tables produce zero findings."""
        for name in CORPUS:
            comp, pristine = compilations[name]
            comp.hli.entries = pristine
            assert lint_compilation(comp).clean
