"""``hli-lint`` CLI: arguments, output formats, and the exit-code contract."""

import json

import pytest

from repro.checker.cli import main
from repro.hli.tables import EqClass, EquivType

CLEAN = """\
int s;
int main() { s = 1; return s; }
"""


@pytest.fixture
def clean_file(tmp_path):
    p = tmp_path / "clean.c"
    p.write_text(CLEAN)
    return str(p)


class TestExitCodes:
    def test_clean_file_exits_zero(self, clean_file, capsys):
        assert main([clean_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, clean_file, capsys, monkeypatch):
        # corrupt every compilation's HLI right after compile_source
        import repro.checker.cli as cli
        from repro.driver.compile import compile_source as real_compile

        def corrupted(source, filename, options):
            comp = real_compile(source, filename, options)
            entry = comp.hli.entries["main"]
            root = entry.root_region()
            cls = next(c for c in root.eq_classes if len(c.member_items) >= 2)
            stolen = cls.member_items.pop()
            root.eq_classes.append(
                EqClass(class_id=9000, equiv_type=EquivType.DEFINITE, member_items=[stolen])
            )
            return comp

        monkeypatch.setattr(cli, "compile_source", corrupted)
        assert main([clean_file]) == 1
        out = capsys.readouterr().out
        assert "HLI00" in out and "finding" in out

    def test_no_input_exits_two(self, capsys):
        assert main([]) == 2

    def test_missing_file_exits_two(self, capsys):
        assert main(["/nonexistent/x.c"]) == 2

    def test_bad_suppress_rule_exits_two(self, clean_file, capsys):
        assert main([clean_file, "--suppress", "HLI999"]) == 2

    def test_compile_error_exits_two(self, tmp_path, capsys):
        p = tmp_path / "broken.c"
        p.write_text("int main( {")
        assert main([str(p)]) == 2


class TestOptions:
    def test_json_format(self, clean_file, capsys):
        assert main([clean_file, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["targets"][0]["diagnostics"] == []
        assert payload["targets"][0]["claims_checked"]

    def test_mode_all_audits_three_modes(self, clean_file, capsys):
        assert main([clean_file, "--mode", "all"]) == 0
        out = capsys.readouterr().out
        assert "[gcc]" in out and "[hli]" in out and "[combined]" in out

    def test_passes_and_dynamic(self, clean_file, capsys):
        rc = main([clean_file, "--cse", "--licm", "--unroll", "2", "--dynamic"])
        assert rc == 0

    def test_suppress_hides_findings(self, clean_file, capsys, monkeypatch):
        import repro.checker.cli as cli
        from repro.driver.compile import compile_source as real_compile

        def corrupted(source, filename, options):
            comp = real_compile(source, filename, options)
            root = comp.hli.entries["main"].root_region()
            cls = next(c for c in root.eq_classes if len(c.member_items) >= 2)
            stolen = cls.member_items.pop()
            root.eq_classes.append(
                EqClass(class_id=9000, equiv_type=EquivType.DEFINITE, member_items=[stolen])
            )
            return comp

        monkeypatch.setattr(cli, "compile_source", corrupted)
        rc_all = main([clean_file, "--suppress", "HLI001,HLI003,HLI006,HLI008"])
        out = capsys.readouterr().out
        assert rc_all == 0, out
        assert "suppressed" in out
