"""Whole-program lint (HLI009–HLI012): clean images audit clean, and every
injected link corruption is detected by its dedicated rule."""

import pytest

from repro.driver.wpa import compile_whole_program
from repro.hli import faults

UNITS = [
    (
        "main.c",
        "int total;\n"
        "extern int bump(int k);\n"
        "extern int weigh(int k);\n"
        "int main() {\n"
        "    int i;\n"
        "    for (i = 0; i < 4; i++) { total = total + bump(i); }\n"
        "    return weigh(total);\n"
        "}\n",
    ),
    (
        "lib.c",
        "int tally;\n"
        "int bump(int k) {\n"
        "    tally = tally + k;\n"
        "    return tally;\n"
        "}\n"
        "int weigh(int k) { return k * 2 + tally; }\n",
    ),
]


def _rules_fired(report):
    return {d.rule.rule_id for d in report.diagnostics}


class TestCleanImage:
    def test_no_findings_and_claims_counted(self):
        wp = compile_whole_program(UNITS)
        report = wp.lint_report()
        assert report.diagnostics == []
        # every rule must have actually replayed claims, not vacuously passed
        assert report.claims_checked
        assert sum(report.claims_checked.values()) > 0


class TestFaultDetection:
    def test_drop_summary_caught_by_hli009(self):
        with faults.inject(faults.DROP_SUMMARY):
            wp = compile_whole_program(UNITS)
            report = wp.lint_report()
        assert "HLI009-summary-unsound" in _rules_fired(report)

    def test_swap_link_entries_caught_by_hli010(self):
        with faults.inject(faults.SWAP_LINK_ENTRIES):
            wp = compile_whole_program(UNITS)
            report = wp.lint_report()
        assert "HLI010-link-table-inconsistent" in _rules_fired(report)

    def test_drop_summary_also_breaks_convergence(self):
        # a blanked summary loses its own local effects, which HLI011's
        # one-more-step probe must notice independently of HLI009
        with faults.inject(faults.DROP_SUMMARY):
            wp = compile_whole_program(UNITS)
            report = wp.lint_report()
        assert "HLI011-scc-nonconverged" in _rules_fired(report)

    def test_stale_summary_caught_by_hli012(self):
        with faults.inject(faults.STALE_SUMMARY):
            wp = compile_whole_program(UNITS)
            report = wp.lint_report()
        assert "HLI012-stale-summary" in _rules_fired(report)

    @pytest.mark.parametrize("fault", faults.LINK_FAULTS)
    def test_every_link_fault_detected(self, fault):
        with faults.inject(fault):
            wp = compile_whole_program(UNITS)
            report = wp.lint_report()
        assert report.diagnostics, f"{fault} produced a clean lint report"

    def test_detection_requires_the_fault(self):
        wp = compile_whole_program(UNITS)
        assert wp.lint_report().diagnostics == []
