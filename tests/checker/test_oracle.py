"""The conservative dependence oracle: proofs only, no false claims."""

from repro import CompileOptions, compile_source
from repro.checker.oracle import CallEffectOracle, DependenceOracle, DepVerdict


def _compile(src):
    return compile_source(src, "oracle.c", CompileOptions(schedule=False))


def _mems(fn):
    return [i for i in fn.insns if i.mem is not None]


def _by_symbol(oracle, fn, sym, store=None):
    out = []
    for i in _mems(fn):
        if store is not None and i.mem.is_store != store:
            continue
        if oracle.addr_of(i).symbol == sym:
            out.append(i)
    return out


class TestDependenceOracle:
    def test_same_scalar_is_must(self):
        comp = _compile(
            """
int s;
int main() { s = 1; return s; }
"""
        )
        fn = comp.rtl.functions["main"]
        oracle = DependenceOracle(fn)
        stores = _by_symbol(oracle, fn, "s", store=True)
        loads = _by_symbol(oracle, fn, "s", store=False)
        assert stores and loads
        assert oracle.classify(stores[0], loads[0]) is DepVerdict.MUST

    def test_distinct_globals_are_disjoint(self):
        comp = _compile(
            """
int x;
int y;
int main() { x = 1; y = 2; return x + y; }
"""
        )
        fn = comp.rtl.functions["main"]
        oracle = DependenceOracle(fn)
        sx = _by_symbol(oracle, fn, "x", store=True)[0]
        sy = _by_symbol(oracle, fn, "y", store=True)[0]
        assert oracle.classify(sx, sy) is DepVerdict.DISJOINT
        assert oracle.independent(sx, sy)

    def test_loop_varying_index_is_may(self):
        comp = _compile(
            """
int a[10];
int main() {
    int i;
    for (i = 0; i < 10; i = i + 1) { a[i] = i; }
    return a[3];
}
"""
        )
        fn = comp.rtl.functions["main"]
        oracle = DependenceOracle(fn)
        stores = [i for i in _mems(fn) if i.mem.is_store]
        arr = [i for i in stores if not oracle.addr_of(i).resolved]
        assert arr, "the a[i] store must be unresolved (loop-varying address)"
        loads = [i for i in _mems(fn) if not i.mem.is_store]
        assert oracle.classify(arr[0], loads[0]) is DepVerdict.MAY

    def test_local_and_global_same_name_disjoint(self):
        comp = _compile(
            """
int v[2];
int main() { int v[2]; v[0] = 3; return v[0]; }
"""
        )
        fn = comp.rtl.functions["main"]
        oracle = DependenceOracle(fn)
        stores = [i for i in _mems(fn) if i.mem.is_store]
        # the local store resolves to a frame-unique name, never the bare
        # global name — that uniqueness is what makes DISJOINT sound
        syms = {oracle.addr_of(st).symbol for st in stores} - {None}
        assert syms and "v" not in syms
        # sanity: classify never returns MUST for refs of different symbols
        for a in _mems(fn):
            for b in _mems(fn):
                va, vb = oracle.addr_of(a), oracle.addr_of(b)
                if va.symbol and vb.symbol and va.symbol != vb.symbol:
                    assert oracle.classify(a, b) is DepVerdict.DISJOINT


class TestCallEffectOracle:
    SRC = """
int g;
int h;

void poke() { g = 42; }

int peek() { return h; }

int main() {
    poke();
    return peek();
}
"""

    def test_must_mod_collected(self):
        comp = _compile(self.SRC)
        orc = CallEffectOracle(comp.rtl)
        eff = orc.must_effects("poke")
        assert any(sym == "g" for sym, _, _ in eff.mod)
        assert not eff.ref or all(sym != "g" for sym, _, _ in eff.ref)

    def test_must_ref_collected(self):
        comp = _compile(self.SRC)
        orc = CallEffectOracle(comp.rtl)
        eff = orc.must_effects("peek")
        assert any(sym == "h" for sym, _, _ in eff.ref)

    def test_transitive_through_main(self):
        comp = _compile(self.SRC)
        orc = CallEffectOracle(comp.rtl)
        eff = orc.must_effects("main")
        assert any(sym == "g" for sym, _, _ in eff.mod)

    def test_external_callee_is_empty(self):
        comp = _compile(self.SRC)
        orc = CallEffectOracle(comp.rtl)
        eff = orc.must_effects("printf")
        assert not eff.ref and not eff.mod

    def test_conditional_effects_excluded(self):
        comp = _compile(
            """
int g;
void maybe(int c) { if (c) { g = 1; } }
int main() { maybe(0); return g; }
"""
        )
        orc = CallEffectOracle(comp.rtl)
        eff = orc.must_effects("maybe")
        # the store is control-dependent: must NOT be claimed as a must-effect
        assert all(sym != "g" for sym, _, _ in eff.mod)

    def test_touches_overlap(self):
        from repro.checker.oracle import AbstractAddr

        effects = frozenset({("g", 0, 4)})
        assert CallEffectOracle.touches(effects, AbstractAddr("g", 0), 4)
        assert CallEffectOracle.touches(effects, AbstractAddr("g", 2), 4)
        assert not CallEffectOracle.touches(effects, AbstractAddr("g", 4), 4)
        assert not CallEffectOracle.touches(effects, AbstractAddr("h", 0), 4)
        assert not CallEffectOracle.touches(effects, AbstractAddr(), 4)
